(** Confidence intervals for the two noise regimes of the study:
    Gaussian-noised PrivCount counts, and binomially-noised PSC unique
    counts further biased low by hash-table collisions. *)

type t = { lo : float; hi : float }

val make : float -> float -> t
val width : t -> float
val contains : t -> float -> bool
val midpoint : t -> float
val intersect : t -> t -> t option
val union : t -> t -> t
val scale : t -> float -> t
(** Multiply both endpoints (extrapolation by 1/p). *)

val pp : Format.formatter -> t -> unit

val normal : ?confidence:float -> value:float -> sigma:float -> unit -> t
(** CI for an observation [value] = truth + N(0, sigma²): the standard
    ±z·σ interval (95% by default), clamped is NOT applied — counts can
    be legitimately negative after noising (paper §4.2). *)

val normal_nonneg : ?confidence:float -> value:float -> sigma:float -> unit -> t
(** Same, with the lower bound clamped at 0 — for quantities known to be
    counts when reporting. *)

val binomial_exact :
  ?confidence:float -> observed:int -> flips:int -> table_size:int -> unit -> t
(** The PSC interval (paper §3.3): the reported value is
    [observed] = collide(true_count) + Binomial(flips, 1/2) − flips/2,
    where collide(k) is the expected number of occupied cells when k
    distinct items hash into [table_size] cells. Inverts the likelihood
    over the true count with an exact dynamic-programming / search
    procedure and returns the 95% region. *)

val expected_occupied : table_size:int -> int -> float
(** E[occupied cells] after k distinct balls into [table_size] bins:
    m(1 - (1-1/m)^k). *)

val invert_occupancy : table_size:int -> float -> float
(** Inverse of {!expected_occupied} in k (collision-bias correction). *)
