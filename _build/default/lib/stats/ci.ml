type t = { lo : float; hi : float }

let make lo hi =
  if lo > hi then invalid_arg "Ci.make: lo > hi";
  { lo; hi }

let width { lo; hi } = hi -. lo
let contains { lo; hi } x = x >= lo && x <= hi
let midpoint { lo; hi } = (lo +. hi) /. 2.0

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let union a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let scale { lo; hi } f =
  if f < 0.0 then invalid_arg "Ci.scale: negative factor";
  { lo = lo *. f; hi = hi *. f }

let pp fmt { lo; hi } = Format.fprintf fmt "[%.6g; %.6g]" lo hi

let normal ?(confidence = 0.95) ~value ~sigma () =
  if sigma < 0.0 then invalid_arg "Ci.normal: negative sigma";
  let z = Special.z_for_confidence confidence in
  { lo = value -. (z *. sigma); hi = value +. (z *. sigma) }

let normal_nonneg ?confidence ~value ~sigma () =
  let ci = normal ?confidence ~value ~sigma () in
  { ci with lo = max 0.0 ci.lo }

(* --- occupancy model for the PSC hash table --- *)

let expected_occupied ~table_size k =
  if table_size <= 0 then invalid_arg "Ci.expected_occupied: table_size must be positive";
  if k < 0 then invalid_arg "Ci.expected_occupied: negative k";
  let m = float_of_int table_size in
  m *. (1.0 -. ((1.0 -. (1.0 /. m)) ** float_of_int k))

let occupied_stddev ~table_size k =
  let m = float_of_int table_size and k = float_of_int k in
  let a = (1.0 -. (1.0 /. m)) ** k in
  let b = (1.0 -. (2.0 /. m)) ** k in
  let var = (m *. (m -. 1.0) *. b) +. (m *. a) -. (m *. m *. a *. a) in
  sqrt (max 0.0 var)

let invert_occupancy ~table_size occ =
  let m = float_of_int table_size in
  if occ <= 0.0 then 0.0
  else if occ >= m then infinity
  else log (1.0 -. (occ /. m)) /. log (1.0 -. (1.0 /. m))

(* --- exact central quantiles of Binomial(n, 1/2) - n/2 --- *)

(* For moderate n we sum the pmf exactly in log space; past the exact
   threshold the normal approximation with continuity correction is
   accurate to far better than the quantile granularity we need. *)
let binomial_central_quantiles ~n ~confidence =
  if n <= 0 then (0.0, 0.0)
  else if n <= 65_536 then begin
    let tail = (1.0 -. confidence) /. 2.0 in
    let log_half_n = float_of_int n *. log 0.5 in
    (* walk the cdf upward from 0 *)
    let cdf = Array.make (n + 1) 0.0 in
    let acc = ref 0.0 in
    for k = 0 to n do
      acc := !acc +. exp (Prng.Dist.log_choose n k +. log_half_n);
      cdf.(k) <- !acc
    done;
    (* lo_k: smallest k with P(X <= k) >= tail; hi_k: smallest k with
       P(X > k) <= tail. The central region [lo_k, hi_k] then has
       probability >= confidence. *)
    let lo_k =
      let rec find k = if k > n || cdf.(k) >= tail then k else find (k + 1) in
      find 0
    in
    let hi_k =
      let rec find k = if k >= n || 1.0 -. cdf.(k) <= tail then k else find (k + 1) in
      find lo_k
    in
    let center = float_of_int n /. 2.0 in
    (float_of_int lo_k -. center, float_of_int hi_k -. center)
  end
  else begin
    let sigma = sqrt (float_of_int n) /. 2.0 in
    let z = Special.z_for_confidence confidence in
    (-.(z *. sigma) -. 0.5, (z *. sigma) +. 0.5)
  end

let binomial_exact ?(confidence = 0.95) ~observed ~flips ~table_size () =
  (* observed = occ(k) + [Binomial(flips,1/2) - flips/2]; the acceptance
     region in k is the interval where occ(k) is within the central
     binomial quantiles of observed, widened by the occupancy's own
     spread. Monotonicity of occ(k) lets us invert in closed form. *)
  let q_lo, q_hi = binomial_central_quantiles ~n:flips ~confidence in
  let center = float_of_int flips /. 2.0 in
  let occ_hi = float_of_int observed -. center -. q_lo in
  let occ_lo = float_of_int observed -. center -. q_hi in
  let widen occ sign =
    let k0 = invert_occupancy ~table_size (min occ (float_of_int table_size -. 1.0)) in
    let sd = occupied_stddev ~table_size (max 0 (int_of_float k0)) in
    occ +. (sign *. 2.0 *. sd)
  in
  let occ_lo = max 0.0 (widen occ_lo (-1.0)) in
  let m = float_of_int table_size in
  let occ_hi = min (m -. 1.0) (widen occ_hi 1.0) in
  let k_lo = invert_occupancy ~table_size occ_lo in
  let k_hi = invert_occupancy ~table_size occ_hi in
  make (max 0.0 k_lo) (max k_lo k_hi)
