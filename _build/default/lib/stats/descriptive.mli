(** Sample statistics used by the Monte-Carlo extrapolations. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased (n-1) sample variance; requires >= 2 samples. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** Linear interpolation between closest ranks; q in [0, 1]. *)

val median : float array -> float

val empirical_ci : ?confidence:float -> float array -> Ci.t
(** Central empirical interval (95% by default). *)
