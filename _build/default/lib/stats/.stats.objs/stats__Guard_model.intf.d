lib/stats/guard_model.mli: Ci
