lib/stats/special.mli:
