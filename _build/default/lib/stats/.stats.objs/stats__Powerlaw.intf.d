lib/stats/powerlaw.mli: Ci Prng
