lib/stats/powerlaw.ml: Array Ci Descriptive Extrapolate Hashtbl List Prng
