lib/stats/extrapolate.ml: Ci
