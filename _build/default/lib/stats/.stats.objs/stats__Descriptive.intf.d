lib/stats/descriptive.mli: Ci
