lib/stats/descriptive.ml: Array Ci
