lib/stats/extrapolate.mli: Ci
