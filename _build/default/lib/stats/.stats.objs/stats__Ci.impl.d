lib/stats/ci.ml: Array Format Prng Special
