lib/stats/guard_model.ml: Ci List
