(* Power-law (Zipf) popularity machinery for unique-count extrapolation
   (paper §4.3): site visits follow a power law; given our relays observe
   a fraction p of all visits, the number of *distinct* sites we observe
   depends on the exponent. The paper simulates clients visiting random
   destinations under candidate exponents and keeps those consistent
   with the locally observed unique count. *)

(* Expected number of distinct items observed when drawing [draws]
   visits from a Zipf(n, s) popularity distribution:
   sum_k (1 - (1 - q_k)^draws), computed with the exact per-rank
   probabilities. O(n) per evaluation. *)
let expected_distinct ~n ~s ~draws =
  if n <= 0 then invalid_arg "Powerlaw.expected_distinct: n must be positive";
  let h = ref 0.0 in
  for k = 1 to n do
    h := !h +. (float_of_int k ** -.s)
  done;
  let total = ref 0.0 in
  let d = float_of_int draws in
  for k = 1 to n do
    let q = (float_of_int k ** -.s) /. !h in
    (* 1 - (1-q)^d via expm1 for tiny q *)
    let log1mq = log1p (-.q) in
    total := !total +. (1.0 -. exp (d *. log1mq))
  done;
  !total

(* Maximum-likelihood exponent for ranked frequency data f_k ~ k^-s:
   least squares in log-log space over the provided ranks. A simple,
   robust estimator adequate for choosing simulation exponents. *)
let fit_exponent ranked_counts =
  let points =
    Array.to_list ranked_counts
    |> List.mapi (fun i c -> (float_of_int (i + 1), c))
    |> List.filter (fun (_, c) -> c > 0.0)
  in
  if List.length points < 2 then invalid_arg "Powerlaw.fit_exponent: need >= 2 positive counts";
  let xs = List.map (fun (k, _) -> log k) points in
  let ys = List.map (fun (_, c) -> log c) points in
  let n = float_of_int (List.length points) in
  let sx = List.fold_left ( +. ) 0.0 xs and sy = List.fold_left ( +. ) 0.0 ys in
  let sxx = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
  let sxy = List.fold_left2 (fun a x y -> a +. (x *. y)) 0.0 xs ys in
  let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  -.slope

(* Simulate the number of distinct items seen in a sample of [draws]
   visits out of a universe of n Zipf(s)-popular items. One trial. *)
let simulate_distinct rng ~n ~s ~draws =
  let seen = Hashtbl.create (min draws 65_536) in
  for _ = 1 to draws do
    let k = Prng.Dist.zipf rng ~n ~s in
    if not (Hashtbl.mem seen k) then Hashtbl.add seen k ()
  done;
  Hashtbl.length seen

(* The paper's extrapolation: we locally saw [observed_distinct] uniques
   out of [observed_draws] visits; the whole network performs
   observed_draws / fraction visits. For candidate exponents drawn at
   random, keep those whose predicted local distinct count matches the
   observation (within tolerance), and report the spread of their
   predicted network-wide distinct counts. *)
type extrapolation = {
  network_distinct : Ci.t;
  accepted_exponents : float list;
  trials : int;
}

let extrapolate_unique rng ~universe ~observed_distinct ~observed_draws ~fraction
    ?(trials = 100) ?(tolerance = 0.05) () =
  if fraction <= 0.0 || fraction > 1.0 then
    invalid_arg "Powerlaw.extrapolate_unique: bad fraction";
  let network_draws = int_of_float (float_of_int observed_draws /. fraction) in
  let accepted = ref [] in
  for _ = 1 to trials do
    (* candidate exponent in the web-popularity range reported in the
       literature the paper cites (Adamic–Huberman, Krashakov et al.) *)
    let s = 0.6 +. (Prng.Rng.float rng *. 0.8) in
    let predicted_local = expected_distinct ~n:universe ~s ~draws:observed_draws in
    let err = abs_float (predicted_local -. float_of_int observed_distinct)
              /. float_of_int (max 1 observed_distinct)
    in
    if err <= tolerance then begin
      let predicted_network = expected_distinct ~n:universe ~s ~draws:network_draws in
      accepted := (s, predicted_network) :: !accepted
    end
  done;
  match !accepted with
  | [] ->
    (* fall back to the conservative [x, x/p] range *)
    {
      network_distinct = Extrapolate.unique_range ~fraction (float_of_int observed_distinct);
      accepted_exponents = [];
      trials;
    }
  | accepted ->
    let values = Array.of_list (List.map snd accepted) in
    {
      network_distinct = Descriptive.empirical_ci values;
      accepted_exponents = List.map fst accepted;
      trials;
    }
