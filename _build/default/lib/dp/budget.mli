(** Privacy-budget allocation across the counters of a measurement
    round, and sequential composition across rounds. *)

type allocation = { per_counter : Mechanism.params; counters : int }

val split : Mechanism.params -> counters:int -> allocation
(** Divide ε and δ evenly (PrivCount's default policy). *)

val compose : Mechanism.params list -> Mechanism.params
(** Basic sequential composition: sum of the ε's and δ's. *)

val split_weighted : Mechanism.params -> weights:float list -> Mechanism.params list
(** Budget shares proportional to positive [weights]. *)
