(** Composition theorems for (ε, δ)-DP beyond the basic sum used by
    {!Budget}: the advanced composition bound lets a long measurement
    campaign (the paper ran for months) spend substantially less total
    ε than basic composition suggests. *)

val basic : Mechanism.params -> rounds:int -> Mechanism.params
(** k-fold basic composition: (kε, kδ). *)

val advanced : Mechanism.params -> rounds:int -> delta_slack:float -> Mechanism.params
(** Dwork–Rothblum–Vadhan advanced composition: k mechanisms that are
    each (ε, δ)-DP are together
    (ε·sqrt(2k ln(1/δ')) + kε(e^ε − 1), kδ + δ')-DP. *)

val best : Mechanism.params -> rounds:int -> delta_slack:float -> Mechanism.params
(** The smaller of basic and advanced for the round count at hand
    (advanced only wins for enough rounds). *)

val rounds_within_budget :
  per_round:Mechanism.params -> budget:Mechanism.params -> delta_slack:float -> int
(** How many measurement rounds fit a campaign budget under {!best}. *)
