let basic (p : Mechanism.params) ~rounds =
  if rounds < 0 then invalid_arg "Composition.basic: negative rounds";
  Mechanism.
    {
      epsilon = float_of_int rounds *. p.epsilon;
      delta = float_of_int rounds *. p.delta;
    }

let advanced (p : Mechanism.params) ~rounds ~delta_slack =
  if rounds < 0 then invalid_arg "Composition.advanced: negative rounds";
  if delta_slack <= 0.0 || delta_slack >= 1.0 then
    invalid_arg "Composition.advanced: delta_slack must be in (0,1)";
  let k = float_of_int rounds in
  let open Mechanism in
  let epsilon =
    (p.epsilon *. sqrt (2.0 *. k *. log (1.0 /. delta_slack)))
    +. (k *. p.epsilon *. (exp p.epsilon -. 1.0))
  in
  { epsilon; delta = (k *. p.delta) +. delta_slack }

let best p ~rounds ~delta_slack =
  let b = basic p ~rounds in
  let a = advanced p ~rounds ~delta_slack in
  if a.Mechanism.epsilon < b.Mechanism.epsilon then a else b

let rounds_within_budget ~per_round ~budget ~delta_slack =
  let fits k =
    let total = best per_round ~rounds:k ~delta_slack in
    total.Mechanism.epsilon <= budget.Mechanism.epsilon
    && total.Mechanism.delta <= budget.Mechanism.delta
  in
  (* epsilon grows monotonically in k for both bounds *)
  let rec grow k = if fits (2 * k) then grow (2 * k) else k in
  if not (fits 1) then 0
  else begin
    let lo = grow 1 in
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if fits mid then bisect mid hi else bisect lo mid
    in
    bisect lo (2 * lo)
  end
