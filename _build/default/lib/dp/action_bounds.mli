(** Table 1 of the paper: daily bounds on observable user actions,
    derived from models of three reference activities (web browsing
    with Tor Browser, Ricochet chat, running an onionsite) rather than
    hardcoded — reproducing Table 1 is a computation. *)

type action =
  | Connect_to_domain
  | Exit_data_bytes
  | New_ip_day1
  | New_ip_later_days
  | Tcp_connection
  | Entry_circuit
  | Entry_data_bytes
  | Descriptor_upload
  | New_onion_address
  | Descriptor_fetch
  | Rendezvous_connection
  | Rendezvous_data_bytes

val all_actions : action list
val action_name : action -> string

type activity = Web | Chat | Onionsite | Any

val activity_name : activity -> string

val actions_of_activity : activity -> (action * float) list
(** Daily network actions produced by 24 reasonable hours of an
    activity. [Any] lists actions common to every Tor use. *)

val lookup : activity -> action -> float
(** The activity's daily amount for one action (0 if it performs none). *)

val bound : action -> activity * float
(** The derived bound: the maximum over activities, with the activity
    achieving it. *)

val bound_value : action -> float
val defining_activity : action -> activity

val paper_table : (action * float * activity) list
(** The published Table 1, for comparison in tests and the harness. *)
