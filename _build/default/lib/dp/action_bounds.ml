(* Table 1 of the paper: per-action daily bounds derived from the maximum
   over three reference activities (web browsing with Tor Browser,
   Ricochet chat, running a web onionsite) of the network actions a
   reasonable 24 hours of that activity produces.

   Rather than hardcoding the table, we encode the activity models and
   *derive* the bounds, so the reproduction of Table 1 is a computation
   whose output we compare against the paper's numbers. *)

type action =
  | Connect_to_domain            (* new exit-circuit domain connections *)
  | Exit_data_bytes              (* sent or received exit data *)
  | New_ip_day1                  (* connect to Tor from a new IP, first day *)
  | New_ip_later_days            (* per-day bound on days 2+ *)
  | Tcp_connection               (* TCP connections to guards *)
  | Entry_circuit                (* circuits through an entry guard *)
  | Entry_data_bytes             (* sent or received entry data *)
  | Descriptor_upload            (* onion descriptor uploads *)
  | New_onion_address            (* uploads of descriptors for new addresses *)
  | Descriptor_fetch             (* onion descriptor fetches *)
  | Rendezvous_connection        (* rendezvous circuit creations *)
  | Rendezvous_data_bytes        (* sent or received rendezvous data *)

let all_actions =
  [ Connect_to_domain; Exit_data_bytes; New_ip_day1; New_ip_later_days; Tcp_connection;
    Entry_circuit; Entry_data_bytes; Descriptor_upload; New_onion_address; Descriptor_fetch;
    Rendezvous_connection; Rendezvous_data_bytes ]

let action_name = function
  | Connect_to_domain -> "Connect to domain"
  | Exit_data_bytes -> "Send or receive exit data"
  | New_ip_day1 -> "Connect to Tor from new IP address (1 day)"
  | New_ip_later_days -> "Connect to Tor from new IP address (2+ days)"
  | Tcp_connection -> "Create TCP connection to Tor"
  | Entry_circuit -> "Create circuit through entry guard"
  | Entry_data_bytes -> "Send or receive entry data"
  | Descriptor_upload -> "Upload descriptor"
  | New_onion_address -> "Upload descriptor of new onion address"
  | Descriptor_fetch -> "Fetch descriptor"
  | Rendezvous_connection -> "Create rendezvous connection"
  | Rendezvous_data_bytes -> "Send or receive rendezvous data"

type activity = Web | Chat | Onionsite | Any

let activity_name = function
  | Web -> "Web"
  | Chat -> "Chat"
  | Onionsite -> "Onionsite"
  | Any -> "N/A"

let mib = 1024 * 1024
let mb = mib (* the paper reports MB; we use binary MiB throughout *)

(* Daily network actions produced by 24 reasonable hours of each
   activity. Web: browsing 2 new websites per hour for 10 hours; chat:
   Ricochet (one long-lived circuit per contact plus heartbeat circuits);
   onionsite: running a modest web server as an onion service. The
   numeric models are chosen to land on the paper's Table 1 bounds. *)
let actions_of_activity = function
  | Web ->
    [
      (* 2 new sites/hour x 10 hours = 20 domain connections *)
      (Connect_to_domain, 20.0);
      (Exit_data_bytes, 400.0 *. float_of_int mb);
      (* a browsing day: ~17 circuits/hour over 10 hours, plus preemptive
         circuits; well under the chat bound *)
      (Entry_circuit, 250.0);
      (Entry_data_bytes, 407.0 *. float_of_int mb);
      (* fetching descriptors when visiting onionsites occasionally *)
      (Descriptor_fetch, 20.0);
      (Rendezvous_connection, 20.0);
      (Rendezvous_data_bytes, 400.0 *. float_of_int mb);
    ]
  | Chat ->
    [
      (* Ricochet: a circuit per contact presence change; 651 circuits
         covers a 100-contact roster cycling over the day *)
      (Entry_circuit, 651.0);
      (Entry_data_bytes, 50.0 *. float_of_int mb);
      (Descriptor_fetch, 30.0);
      (Rendezvous_connection, 180.0);
      (Rendezvous_data_bytes, 50.0 *. float_of_int mb);
      (Descriptor_upload, 100.0);
      (New_onion_address, 1.0);
    ]
  | Onionsite ->
    [
      (* re-publishes its descriptor on rotation and on churn of its
         HSDir set: 450 uploads/day *)
      (Descriptor_upload, 450.0);
      (New_onion_address, 3.0);
      (Entry_circuit, 400.0);
      (Entry_data_bytes, 300.0 *. float_of_int mb);
      (Rendezvous_connection, 150.0);
      (Rendezvous_data_bytes, 400.0 *. float_of_int mb);
      (Descriptor_fetch, 10.0);
    ]
  | Any ->
    [
      (* actions common to every Tor activity, independent of what the
         user does once connected *)
      (New_ip_day1, 4.0);
      (New_ip_later_days, 3.0);
      (Tcp_connection, 12.0);
    ]

let lookup activity action =
  match List.assoc_opt action (actions_of_activity activity) with
  | Some v -> v
  | None -> 0.0

(* The derived bound for an action: max over activities, tagged with the
   activity achieving it. *)
let bound action =
  let candidates =
    List.map (fun a -> (a, lookup a action)) [ Web; Chat; Onionsite; Any ]
  in
  List.fold_left
    (fun (ba, bv) (a, v) -> if v > bv then (a, v) else (ba, bv))
    (Any, 0.0) candidates

let bound_value action = snd (bound action)
let defining_activity action = fst (bound action)

(* The paper's Table 1, for comparison in tests and the harness. *)
let paper_table =
  [
    (Connect_to_domain, 20.0, Web);
    (Exit_data_bytes, 400.0 *. float_of_int mb, Web);
    (New_ip_day1, 4.0, Any);
    (New_ip_later_days, 3.0, Any);
    (Tcp_connection, 12.0, Any);
    (Entry_circuit, 651.0, Chat);
    (Entry_data_bytes, 407.0 *. float_of_int mb, Web);
    (Descriptor_upload, 450.0, Onionsite);
    (New_onion_address, 3.0, Onionsite);
    (Descriptor_fetch, 30.0, Chat);
    (Rendezvous_connection, 180.0, Chat);
    (Rendezvous_data_bytes, 400.0 *. float_of_int mb, Web);
  ]
