(** Per-statistic sensitivity: how much one protected user-day (bounded
    by the action bounds) can move each published quantity. *)

type statistic =
  | Count of Action_bounds.action           (** one counter over an action *)
  | Histogram of Action_bounds.action * int (** bins over an action *)
  | Unique of Action_bounds.action          (** PSC set-union cardinality *)

val of_statistic : statistic -> float
val describe : statistic -> string
