(* Per-statistic sensitivity: how much one protected user's 24 hours of
   activity (bounded by the action bounds) can change each counter.

   For a plain counter over an action, the sensitivity is the action
   bound itself. For a histogram query where a single observation falls
   in exactly one bin, a user's activity can move up to [bound] units
   from one bin to another, so the L2 view over the bin vector is
   bounded by sqrt(2) * bound; PrivCount treats the bins as independent
   counters and uses [bound] per bin (the paper follows PrivCount). *)

type statistic =
  | Count of Action_bounds.action           (* one counter over an action *)
  | Histogram of Action_bounds.action * int (* bins over an action *)
  | Unique of Action_bounds.action          (* PSC set-union cardinality *)

let of_statistic = function
  | Count action -> Action_bounds.bound_value action
  | Histogram (action, _bins) -> Action_bounds.bound_value action
  | Unique action ->
    (* A user contributes at most [bound] distinct items to the union
       (e.g. at most 4 new IPs, at most 20 domains). *)
    Action_bounds.bound_value action

let describe = function
  | Count a -> Printf.sprintf "count(%s)" (Action_bounds.action_name a)
  | Histogram (a, bins) -> Printf.sprintf "histogram(%s, %d bins)" (Action_bounds.action_name a) bins
  | Unique a -> Printf.sprintf "unique(%s)" (Action_bounds.action_name a)
