(** Measurement-schedule privacy accountant, enforcing the paper's
    deployment rules (§3.1): no overlapping measurements, and at least
    [min_gap_hours] between measurements of distinct statistics, so
    each 24-hour adjacency window carries at most one publication. *)

type system = PrivCount | PSC

type record = {
  start_hour : int;
  duration_hours : int;
  system : system;
  statistic : string;
  params : Mechanism.params;
}

type t

exception Schedule_violation of string

val create : ?min_gap_hours:int -> unit -> t

val register :
  t -> start_hour:int -> duration_hours:int -> system:system -> statistic:string ->
  params:Mechanism.params -> unit
(** Raises {!Schedule_violation} if the measurement overlaps another or
    violates the gap rule for a distinct statistic. *)

val total_spend : t -> Mechanism.params
(** Composition over the whole campaign. *)

val window_spend : t -> window_start:int -> Mechanism.params
(** Privacy cost intersecting one 24-hour adjacency window. *)

val records : t -> record list
