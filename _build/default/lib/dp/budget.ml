(* Privacy budget allocation across the counters of one measurement
   round. PrivCount splits ε and δ across simultaneously-published
   statistics so that the round as a whole is (ε,δ)-DP by basic
   composition. The paper additionally never runs PrivCount and PSC in
   parallel and spaces distinct statistics by >= 24h (see Schedule). *)

type allocation = { per_counter : Mechanism.params; counters : int }

let split params ~counters =
  if counters <= 0 then invalid_arg "Budget.split: need at least one counter";
  let open Mechanism in
  {
    per_counter =
      {
        epsilon = params.epsilon /. float_of_int counters;
        delta = params.delta /. float_of_int counters;
      };
    counters;
  }

(* Basic sequential composition: total privacy cost of a list of
   (ε_i, δ_i) publications. *)
let compose params_list =
  List.fold_left
    (fun acc p ->
      Mechanism.
        { epsilon = acc.epsilon +. p.epsilon; delta = acc.delta +. p.delta })
    Mechanism.{ epsilon = 0.0; delta = 0.0 }
    params_list

(* Weighted split: counters with larger expected values can absorb more
   noise, so they get less budget; weights are relative ε shares. *)
let split_weighted params ~weights =
  if weights = [] then invalid_arg "Budget.split_weighted: empty weights";
  if List.exists (fun w -> w <= 0.0) weights then
    invalid_arg "Budget.split_weighted: weights must be positive";
  let total = List.fold_left ( +. ) 0.0 weights in
  List.map
    (fun w ->
      Mechanism.
        {
          epsilon = params.epsilon *. w /. total;
          delta = params.delta *. w /. total;
        })
    weights
