lib/dp/composition.mli: Mechanism
