lib/dp/mechanism.mli: Prng
