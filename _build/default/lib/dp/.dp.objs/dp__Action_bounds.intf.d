lib/dp/action_bounds.mli:
