lib/dp/accountant.ml: Budget List Mechanism Printf
