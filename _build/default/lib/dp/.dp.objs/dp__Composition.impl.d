lib/dp/composition.ml: Mechanism
