lib/dp/budget.ml: List Mechanism
