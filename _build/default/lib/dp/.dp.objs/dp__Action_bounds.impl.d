lib/dp/action_bounds.ml: List
