lib/dp/sensitivity.mli: Action_bounds
