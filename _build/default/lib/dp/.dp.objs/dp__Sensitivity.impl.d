lib/dp/sensitivity.ml: Action_bounds Printf
