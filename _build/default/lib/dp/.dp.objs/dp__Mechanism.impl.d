lib/dp/mechanism.ml: Float Prng
