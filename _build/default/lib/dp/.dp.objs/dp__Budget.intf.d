lib/dp/budget.mli: Mechanism
