lib/dp/accountant.mli: Mechanism
