(** (ε, δ)-differential privacy mechanisms.

    PrivCount publishes each counter with additive Gaussian noise whose
    standard deviation is calibrated from the counter's sensitivity
    (derived from the action bounds) and the privacy parameters. PSC's
    noise is binomial, added as random encrypted bits by the computation
    parties. *)

type params = { epsilon : float; delta : float }

val paper_params : params
(** ε = 0.3, δ = 1e-11, as used in the paper (§3.2). *)

val gaussian_sigma : params -> sensitivity:float -> float
(** σ = Δ·sqrt(2 ln(1.25/δ)) / ε — the classic Gaussian-mechanism
    calibration (Dwork & Roth, Thm A.1). *)

val gaussian_noise : Prng.Rng.t -> sigma:float -> float
(** A zero-mean Gaussian draw with the given σ. *)

val gaussian_mechanism :
  Prng.Rng.t -> params -> sensitivity:float -> float -> float * float
(** [gaussian_mechanism rng params ~sensitivity value] returns
    (noisy value, σ used). *)

val binomial_flips : Prng.Rng.t -> n:int -> int
(** PSC noise: [n] fair-coin flips; the count of heads is added to the
    cardinality. Mean n/2 is publicly subtracted; the residual is the
    DP noise. *)

val binomial_n_for : params -> sensitivity:float -> int
(** Number of coin flips per computation party needed so that the
    binomial mechanism is (ε,δ)-DP for the given sensitivity
    (Dwork et al. 2006 "Our Data, Ourselves" calibration:
    n ≥ 64 Δ² ln(2/δ) / ε²). *)

val epsilon_consumed : sigma:float -> sensitivity:float -> delta:float -> float
(** Inverse of {!gaussian_sigma}: the ε actually spent by publishing
    with a given σ. *)

val laplace_scale : epsilon:float -> sensitivity:float -> float
(** b = Δ/ε for the pure-ε Laplace mechanism. *)

val laplace_noise : Prng.Rng.t -> scale:float -> float

val laplace_mechanism :
  Prng.Rng.t -> epsilon:float -> sensitivity:float -> float -> float * float
(** (noisy value, scale used); (ε, 0)-DP. PrivEx's secret-sharing
    variant — the paper's predecessor system — publishes with Laplace
    noise; provided for comparison and ablations. *)
