lib/torsim/onion.mli: Prng
