lib/torsim/ground_truth.mli: Hashtbl
