lib/torsim/wire.ml: Buffer Char Event List Printf Result String
