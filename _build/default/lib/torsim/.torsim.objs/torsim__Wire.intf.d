lib/torsim/wire.mli: Event
