lib/torsim/event.ml:
