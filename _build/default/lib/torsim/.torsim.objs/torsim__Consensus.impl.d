lib/torsim/consensus.ml: Array Float List Prng Relay
