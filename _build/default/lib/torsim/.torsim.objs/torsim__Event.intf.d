lib/torsim/event.mli:
