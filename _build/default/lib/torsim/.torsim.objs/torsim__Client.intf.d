lib/torsim/client.mli: Consensus Prng Relay
