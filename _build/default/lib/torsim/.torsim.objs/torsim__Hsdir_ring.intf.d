lib/torsim/hsdir_ring.mli: Relay
