lib/torsim/engine.ml: Array Client Consensus Descriptor Event Ground_truth Hsdir_ring List Onion Prng
