lib/torsim/engine.mli: Client Consensus Descriptor Event Ground_truth Hsdir_ring Onion Prng Relay
