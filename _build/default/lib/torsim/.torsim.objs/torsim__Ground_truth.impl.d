lib/torsim/ground_truth.ml: Hashtbl
