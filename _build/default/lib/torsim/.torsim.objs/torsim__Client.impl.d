lib/torsim/client.ml: Array Consensus Prng Relay
