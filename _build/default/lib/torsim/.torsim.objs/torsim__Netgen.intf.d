lib/torsim/netgen.mli: Consensus Prng
