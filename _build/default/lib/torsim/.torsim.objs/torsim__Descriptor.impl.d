lib/torsim/descriptor.ml: Crypto List Printf Relay String
