lib/torsim/hsdir_ring.ml: Array Crypto Hashtbl List Printf Relay
