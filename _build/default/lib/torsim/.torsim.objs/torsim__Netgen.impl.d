lib/torsim/netgen.ml: Array Consensus Float Printf Prng Relay
