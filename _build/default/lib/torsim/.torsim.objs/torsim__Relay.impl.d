lib/torsim/relay.ml: Format
