lib/torsim/relay.mli: Format
