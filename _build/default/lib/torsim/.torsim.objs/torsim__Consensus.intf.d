lib/torsim/consensus.mli: Prng Relay
