lib/torsim/descriptor.mli: Crypto Relay
