lib/torsim/onion.ml: Array Crypto Hashtbl List Printf Prng String
