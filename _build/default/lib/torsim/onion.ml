(* Registry of simulated onion services. Addresses are derived from a
   counter through SHA-256, truncated to the 16-character base32-ish v2
   form; [public] marks services listed in the public (ahmia-like)
   index, used for the Table 7 "public vs unknown" split. *)

type service = {
  address : string;
  public : bool;
  mutable published : bool;
}

type t = {
  mutable services : service array;
  by_address : (string, service) Hashtbl.t;
}

let address_of_index i =
  let digest = Crypto.Sha256.hex (Printf.sprintf "onion-service-%d" i) in
  String.sub digest 0 16 ^ ".onion"

let create () = { services = [||]; by_address = Hashtbl.create 1024 }

let add t ~public =
  let address = address_of_index (Hashtbl.length t.by_address) in
  let s = { address; public; published = false } in
  t.services <- Array.append t.services [| s |];
  Hashtbl.replace t.by_address address s;
  s

let populate t ~count ~public_fraction rng =
  List.init count (fun _ -> add t ~public:(Prng.Rng.bernoulli rng public_fraction))

let find t address = Hashtbl.find_opt t.by_address address

let services t = t.services
let count t = Array.length t.services

(* A syntactically-valid address that no service owns: what a scanner
   with an outdated list, or a botnet with a dead C&C address, asks
   for (paper §6.2). *)
let bogus_address i =
  let digest = Crypto.Sha256.hex (Printf.sprintf "bogus-onion-%d" i) in
  String.sub digest 0 16 ^ ".onion"
