(** The consensus view of the simulated network: the relay list plus the
    weighted samplers clients use for path selection, and the weight
    fractions needed to extrapolate observations (paper §3.3). *)

type t

val create : Relay.t array -> t

val relays : t -> Relay.t array
val size : t -> int
val relay : t -> Relay.id -> Relay.t

val sample_guard : t -> Prng.Rng.t -> Relay.id
val sample_middle : t -> Prng.Rng.t -> Relay.id
val sample_exit : t -> Prng.Rng.t -> Relay.id
val sample_rendezvous : t -> Prng.Rng.t -> Relay.id
(** Rendezvous points are selected like middles. *)

val guard_ids : t -> Relay.id array
val exit_ids : t -> Relay.id array
val hsdir_ids : t -> Relay.id array

val guard_fraction : t -> Relay.id list -> float
(** Fraction of total guard weight held by the given relays. *)

val exit_fraction : t -> Relay.id list -> float
val middle_fraction : t -> Relay.id list -> float

val pick_observers_by_weight :
  t -> Prng.Rng.t -> role:[ `Guard | `Exit | `Middle ] -> target_fraction:float ->
  Relay.id list
(** Greedily select relays of the given role until their combined weight
    fraction reaches [target_fraction] — how we "run 16 relays" at a
    chosen share of the network. *)

val total_guard_weight : t -> float
val total_exit_weight : t -> float
