(** The onion-service directory DHT (paper §2.1): HSDir relays are
    ordered on a hash ring; a descriptor is stored at [spread]
    consecutive relays starting at each of [replicas] ring positions
    derived from the descriptor ID (v2: 2 replicas x 3 spread = 6
    relays). *)

type t

val create : ?replicas:int -> ?spread:int -> Relay.id array -> t
(** Build the ring over the given HSDir relays. *)

val replicas : t -> int
val spread : t -> int
val slots : t -> int
(** replicas * spread: how many relays hold each descriptor. *)

val size : t -> int
(** Number of HSDirs on the ring. *)

val responsible : t -> string -> Relay.id list
(** The distinct relays responsible for a descriptor id (onion
    address); at most [slots], fewer if the ring is small or the
    replica windows overlap. *)

val position : t -> Relay.id -> int option
(** Ring index of a relay, if it is an HSDir. *)

val fetch_visibility : ?samples:int -> t -> Relay.id list -> float
(** Probability that a descriptor fetch (one uniformly-chosen
    responsible relay) lands at an observer, averaged over sample
    addresses — accounts for the observers' actual arc share under
    consistent hashing. *)

val publish_visibility : ?samples:int -> t -> Relay.id list -> float
(** Probability that at least one of a descriptor's responsible relays
    is an observer (a published address is seen by PSC). *)

val expected_slot_fraction : t -> Relay.id list -> float
(** The fraction of (replica, spread) slots held by the given relays,
    assuming uniform descriptor ids — the publish/fetch "weight" used to
    extrapolate HSDir observations (paper §6.1). *)
