(** Simulated Tor clients. Selective clients hold a small fixed guard
    set (data guard + directory guards, g in {3,4,5}); promiscuous
    clients (bridges, tor2web, large NATs) contact every guard over a
    day (paper §5.1). *)

type kind = Selective | Promiscuous

type t = {
  ip : int;
  country : string;
  asn : int;
  kind : kind;
  guards : Relay.id array;
}

val make_selective :
  Consensus.t -> Prng.Rng.t -> ip:int -> country:string -> asn:int -> g:int -> t
(** Samples [g] distinct guards weighted by guard weight. *)

val make_promiscuous : Consensus.t -> ip:int -> country:string -> asn:int -> t

val primary_guard : t -> Relay.id
(** The data guard (all user traffic flows through it). *)

val some_guard : t -> Prng.Rng.t -> Relay.id
(** A uniformly random guard from the client's set (directory use). *)
