(** Registry of simulated onion services. Addresses are stable hashes
    in the 16-character v2 form; [public] marks services listed in the
    public (ahmia-like) index (Table 7's public/unknown split). *)

type service = {
  address : string;
  public : bool;
  mutable published : bool;
}

type t

val create : unit -> t

val add : t -> public:bool -> service

val populate : t -> count:int -> public_fraction:float -> Prng.Rng.t -> service list

val find : t -> string -> service option

val services : t -> service array
val count : t -> int

val address_of_index : int -> string
(** The deterministic address of the i-th service. *)

val bogus_address : int -> string
(** A syntactically valid address no service owns — what botnets and
    stale scanners look up (§6.2). *)
