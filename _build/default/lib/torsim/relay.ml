(* Relays of the simulated consensus. Bandwidth weights play the role of
   Tor's consensus weights: clients pick guards/middles/exits/HSDirs with
   probability proportional to the relevant weight. *)

type id = int

type flags = {
  guard : bool;
  exit : bool;
  hsdir : bool;
}

type t = {
  id : id;
  nickname : string;
  bandwidth : float;  (* consensus weight units *)
  flags : flags;
}

let make ~id ~nickname ~bandwidth ~guard ~exit ~hsdir =
  if bandwidth <= 0.0 then invalid_arg "Relay.make: bandwidth must be positive";
  { id; nickname; bandwidth; flags = { guard; exit; hsdir } }

(* Position weights, after Tor's consensus bandwidth-weight system: a
   guard-flagged relay spends [wgg] of its bandwidth in the guard
   position and the rest as a middle; exit bandwidth is scarce, so
   exit-flagged relays are reserved for the exit position (Wme = 0). *)
let wgg = 0.61

let guard_weight r = if r.flags.guard && not r.flags.exit then r.bandwidth *. wgg else 0.0
let exit_weight r = if r.flags.exit then r.bandwidth else 0.0

let middle_weight r =
  if r.flags.exit then 0.0
  else if r.flags.guard then r.bandwidth *. (1.0 -. wgg)
  else r.bandwidth

let is_hsdir r = r.flags.hsdir

let pp fmt r =
  Format.fprintf fmt "%s(#%d bw=%.0f%s%s%s)" r.nickname r.id r.bandwidth
    (if r.flags.guard then " G" else "")
    (if r.flags.exit then " E" else "")
    (if r.flags.hsdir then " H" else "")
