type t = {
  ring : (string * Relay.id) array;  (* sorted by hash position *)
  replicas : int;
  spread : int;
}

let relay_position id = Crypto.Sha256.hex (Printf.sprintf "hsdir-ring|%d" id)

let create ?(replicas = 2) ?(spread = 3) hsdirs =
  if Array.length hsdirs = 0 then invalid_arg "Hsdir_ring.create: no HSDirs";
  if replicas < 1 || spread < 1 then invalid_arg "Hsdir_ring.create: bad replication";
  let ring = Array.map (fun id -> (relay_position id, id)) hsdirs in
  Array.sort compare ring;
  { ring; replicas; spread }

let replicas t = t.replicas
let spread t = t.spread
let slots t = t.replicas * t.spread
let size t = Array.length t.ring

(* First ring index whose position is >= the target hash (wrapping). *)
let successor t target =
  let n = Array.length t.ring in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.ring.(mid) < target then bsearch (mid + 1) hi else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i = n then 0 else i

let responsible t descriptor_id =
  let n = Array.length t.ring in
  let ids = ref [] in
  for r = 0 to t.replicas - 1 do
    let target = Crypto.Sha256.hex (Printf.sprintf "desc|%s|replica|%d" descriptor_id r) in
    let start = successor t target in
    for s = 0 to min t.spread n - 1 do
      let _, id = t.ring.((start + s) mod n) in
      if not (List.mem id !ids) then ids := id :: !ids
    done
  done;
  List.rev !ids

let position t id =
  let n = Array.length t.ring in
  let rec find i = if i >= n then None else if snd t.ring.(i) = id then Some i else find (i + 1) in
  find 0

(* Consistent hashing loads relays proportionally to their predecessor
   gaps, so a fixed observer set's true share of descriptor slots can
   differ noticeably from |observers|/ring. These estimators average
   over deterministic sample addresses, exactly as an operator could do
   from the public ring structure. *)
let sample_address i = Printf.sprintf "visibility-sample-%d.onion" i

let fetch_visibility ?(samples = 20_000) t observer_ids =
  let obs = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace obs id ()) observer_ids;
  let total = ref 0.0 in
  for i = 0 to samples - 1 do
    let resp = responsible t (sample_address i) in
    let hit = List.length (List.filter (Hashtbl.mem obs) resp) in
    total := !total +. (float_of_int hit /. float_of_int (List.length resp))
  done;
  !total /. float_of_int samples

let publish_visibility ?(samples = 20_000) t observer_ids =
  let obs = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace obs id ()) observer_ids;
  let hits = ref 0 in
  for i = 0 to samples - 1 do
    if List.exists (Hashtbl.mem obs) (responsible t (sample_address i)) then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let expected_slot_fraction t observer_ids =
  (* Each of the [slots] descriptor slots lands on a uniformly random
     ring relay (uniform hash positions), so the expected fraction of
     slots we hold is |observers ∩ ring| / ring size. *)
  let on_ring = List.filter (fun id -> position t id <> None) observer_ids in
  float_of_int (List.length on_ring) /. float_of_int (size t)
