(** Relays of the simulated consensus. Bandwidth plays the role of
    Tor's consensus weight. *)

type id = int

type flags = { guard : bool; exit : bool; hsdir : bool }

type t = {
  id : id;
  nickname : string;
  bandwidth : float;
  flags : flags;
}

val make :
  id:id -> nickname:string -> bandwidth:float -> guard:bool -> exit:bool -> hsdir:bool -> t
(** Raises on non-positive bandwidth. *)

(** Position weight: the fraction of a guard's bandwidth used in the
    guard position (Tor's Wgg); the rest serves middle duty. *)
val wgg : float

(** Weight in the guard position: bandwidth * wgg for guard-flagged
    non-exits, 0 otherwise (exit bandwidth is reserved for exiting). *)
val guard_weight : t -> float

val exit_weight : t -> float

(** Weight in the middle position: non-exits serve as middles; guards
    contribute their non-guard share (1 - wgg). *)
val middle_weight : t -> float
val is_hsdir : t -> bool
val pp : Format.formatter -> t -> unit
