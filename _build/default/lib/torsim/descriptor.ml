type identity = {
  keypair : Crypto.Schnorr_sig.keypair;
  v2_address : string;
}

let address_of_key pub =
  let digest = Crypto.Sha256.hex ("onion-v2-address|" ^ Crypto.Group.elt_to_string pub) in
  String.sub digest 0 16 ^ ".onion"

let make_identity drbg =
  let keypair = Crypto.Schnorr_sig.keygen drbg in
  { keypair; v2_address = address_of_key keypair.Crypto.Schnorr_sig.pub }

type t = {
  version : [ `V2 | `V3 ];
  address : string;
  intro_points : Relay.id list;
  period : int;
  public : Crypto.Group.elt;
  signature : Crypto.Schnorr_sig.signature;
}

let payload_of ~address ~intro_points ~period =
  Printf.sprintf "desc|%s|%s|%d" address
    (String.concat "," (List.map string_of_int intro_points))
    period

let payload t = payload_of ~address:t.address ~intro_points:t.intro_points ~period:t.period

let create_v2 drbg identity ~intro_points ~period =
  let address = identity.v2_address in
  let signature =
    Crypto.Schnorr_sig.sign drbg ~priv:identity.keypair.Crypto.Schnorr_sig.priv
      (payload_of ~address ~intro_points ~period)
  in
  { version = `V2; address; intro_points; period;
    public = identity.keypair.Crypto.Schnorr_sig.pub; signature }

(* v3 key blinding: the period-specific key is
     priv' = priv + H(pub, period),  pub' = pub * g^H(pub, period)
   so anyone knowing the *identity* public key can derive pub' for a
   period, but two blinded addresses from different periods are
   unlinkable without it. *)
let blinding_factor pub ~period =
  Crypto.Group.hash_to_exp
    (Printf.sprintf "v3-blind|%s|%d" (Crypto.Group.elt_to_string pub) period)

let blinded_keypair identity ~period =
  let pub = identity.keypair.Crypto.Schnorr_sig.pub in
  let h = blinding_factor pub ~period in
  let priv' = Crypto.Group.exp_add identity.keypair.Crypto.Schnorr_sig.priv h in
  let pub' = Crypto.Group.mul pub (Crypto.Group.pow_g h) in
  (priv', pub')

let v3_blinded_address identity ~period =
  let _, pub' = blinded_keypair identity ~period in
  let digest = Crypto.Sha256.hex ("onion-v3-address|" ^ Crypto.Group.elt_to_string pub') in
  String.sub digest 0 16 ^ ".onion"

let create_v3 drbg identity ~intro_points ~period =
  let priv', pub' = blinded_keypair identity ~period in
  let address =
    let digest = Crypto.Sha256.hex ("onion-v3-address|" ^ Crypto.Group.elt_to_string pub') in
    String.sub digest 0 16 ^ ".onion"
  in
  let signature =
    Crypto.Schnorr_sig.sign drbg ~priv:priv' (payload_of ~address ~intro_points ~period)
  in
  { version = `V3; address; intro_points; period; public = pub'; signature }

let verify t =
  let address_ok =
    match t.version with
    | `V2 -> t.address = address_of_key t.public
    | `V3 ->
      let digest = Crypto.Sha256.hex ("onion-v3-address|" ^ Crypto.Group.elt_to_string t.public) in
      t.address = String.sub digest 0 16 ^ ".onion"
  in
  address_ok && Crypto.Schnorr_sig.verify ~pub:t.public (payload t) t.signature
