(** Observation events emitted by the (simulated) patched Tor relays to
    PrivCount/PSC data collectors (paper §3.1). Events are only
    materialized at relays with a registered collector. *)

type dest = Hostname of string | Ipv4_literal | Ipv6_literal

type stream_kind = Initial | Subsequent

type fetch_result =
  | Fetch_ok of { public : bool }
      (** descriptor served; [public] = listed in the public index *)
  | Fetch_missing   (** no such descriptor in the DHT *)
  | Fetch_malformed (** unparseable request *)

type rend_outcome =
  | Rend_success of { cells : int }
  | Rend_closed   (** connection closed before rendezvous completion *)
  | Rend_expired  (** circuit timed out before completion *)

type circuit_kind = Data_circuit | Directory_circuit

type t =
  | Client_connection of { client_ip : int; country : string; asn : int }
  | Client_circuit of { client_ip : int; country : string; asn : int; kind : circuit_kind }
  | Entry_bytes of { client_ip : int; country : string; asn : int; bytes : float }
  | Directory_request of { client_ip : int }
  | Exit_stream of { kind : stream_kind; dest : dest; port : int }
  | Exit_bytes of { bytes : float }
  | Descriptor_published of { address : string; first_publish : bool }
  | Descriptor_fetch of { address : string; result : fetch_result }
  | Rendezvous_circuit of { outcome : rend_outcome }

val is_web_port : int -> bool
(** 80 or 443 (paper §4.1). *)

val describe : t -> string
