(* Synthetic consensus generation. Relay bandwidth in the live Tor
   network is heavy-tailed; we draw weights from a Pareto distribution
   and assign flags with probabilities close to the live network's mix
   (about 1/3 of relays are guards, ~15% are exits, and most stable
   relays are HSDirs). *)

type config = {
  relays : int;
  guard_prob : float;
  exit_prob : float;
  hsdir_prob : float;
  pareto_alpha : float;  (* bandwidth tail exponent *)
  pareto_cap : float;    (* truncation: no synthetic mega-relay may
                            dwarf the network (live Tor's largest relay
                            holds ~1-2% of capacity) *)
}

let default =
  { relays = 600; guard_prob = 0.38; exit_prob = 0.16; hsdir_prob = 0.55; pareto_alpha = 1.3;
    pareto_cap = 50.0 }

let pareto rng alpha cap = Float.min cap (Prng.Rng.float_pos rng ** (-1.0 /. alpha))

let generate ?(config = default) rng =
  if config.relays < 10 then invalid_arg "Netgen.generate: need at least 10 relays";
  let relays =
    Array.init config.relays (fun id ->
        let bandwidth = 10.0 *. pareto rng config.pareto_alpha config.pareto_cap in
        let guard = Prng.Rng.bernoulli rng config.guard_prob in
        let exit = Prng.Rng.bernoulli rng config.exit_prob in
        let hsdir = Prng.Rng.bernoulli rng config.hsdir_prob in
        Relay.make ~id ~nickname:(Printf.sprintf "relay%04d" id) ~bandwidth ~guard ~exit ~hsdir)
  in
  (* Guarantee positive capacity per role so Consensus.create succeeds
     on small test networks (each fix targets a distinct relay). *)
  let ensure idx pred fix =
    if not (Array.exists pred relays) then relays.(idx) <- fix relays.(idx)
  in
  ensure 0
    (fun r -> Relay.guard_weight r > 0.0)
    (fun r -> { r with Relay.flags = { r.Relay.flags with Relay.guard = true; exit = false } });
  ensure 1
    (fun r -> Relay.exit_weight r > 0.0)
    (fun r -> { r with Relay.flags = { r.Relay.flags with Relay.exit = true } });
  ensure 2
    (fun r -> Relay.middle_weight r > 0.0)
    (fun r -> { r with Relay.flags = { r.Relay.flags with Relay.exit = false } });
  ensure 3 Relay.is_hsdir (fun r ->
      { r with Relay.flags = { r.Relay.flags with Relay.hsdir = true } });
  Consensus.create relays
