(** Onion-service descriptors with real structure: a service identity
    key signs the descriptor (HSDirs verify before storing), the v2
    address is derived from the public key, and v3 addresses use key
    blinding — which is exactly why the paper measures v2 only: a v3
    blinded address changes every time period and cannot be linked
    across periods by PSC's unique counting (§6.1). *)

type identity = {
  keypair : Crypto.Schnorr_sig.keypair;
  v2_address : string;
}

val make_identity : Crypto.Drbg.t -> identity
(** Fresh service identity; the v2 address is a hash of the public key. *)

type t = {
  version : [ `V2 | `V3 ];
  address : string;           (** v2: stable; v3: per-period blinded *)
  intro_points : Relay.id list;
  period : int;               (** time period of validity *)
  public : Crypto.Group.elt;  (** key the signature verifies under *)
  signature : Crypto.Schnorr_sig.signature;
}

val create_v2 :
  Crypto.Drbg.t -> identity -> intro_points:Relay.id list -> period:int -> t

val create_v3 :
  Crypto.Drbg.t -> identity -> intro_points:Relay.id list -> period:int -> t
(** Signs under the period-blinded key; [address] is derived from the
    blinded key and is unlinkable to the identity across periods. *)

val verify : t -> bool
(** What an HSDir checks before storing: the signature is valid under
    the descriptor's key and the address matches that key. *)

val v3_blinded_address : identity -> period:int -> string
(** The address the service would publish under in a given period. *)

val payload : t -> string
(** The signed byte string (address, intro points, period). *)
