type t = {
  relays : Relay.t array;
  guard_sampler : Prng.Alias.t;
  middle_sampler : Prng.Alias.t;
  exit_sampler : Prng.Alias.t;
  guard_ids : Relay.id array;
  exit_ids : Relay.id array;
  hsdir_ids : Relay.id array;
  total_guard : float;
  total_exit : float;
  total_middle : float;
}

let ids_with pred relays =
  Array.to_list relays
  |> List.filter pred
  |> List.map (fun r -> r.Relay.id)
  |> Array.of_list

let create relays =
  if Array.length relays = 0 then invalid_arg "Consensus.create: empty network";
  Array.iteri
    (fun i r -> if r.Relay.id <> i then invalid_arg "Consensus.create: ids must be dense 0..n-1")
    relays;
  let gw = Array.map Relay.guard_weight relays in
  let ew = Array.map Relay.exit_weight relays in
  let mw = Array.map Relay.middle_weight relays in
  let sum = Array.fold_left ( +. ) 0.0 in
  if sum gw <= 0.0 then invalid_arg "Consensus.create: no guard capacity";
  if sum ew <= 0.0 then invalid_arg "Consensus.create: no exit capacity";
  {
    relays;
    guard_sampler = Prng.Alias.create gw;
    middle_sampler = Prng.Alias.create mw;
    exit_sampler = Prng.Alias.create ew;
    guard_ids = ids_with (fun r -> r.Relay.flags.Relay.guard) relays;
    exit_ids = ids_with (fun r -> r.Relay.flags.Relay.exit) relays;
    hsdir_ids = ids_with Relay.is_hsdir relays;
    total_guard = sum gw;
    total_exit = sum ew;
    total_middle = sum mw;
  }

let relays t = t.relays
let size t = Array.length t.relays

let relay t id =
  if id < 0 || id >= Array.length t.relays then invalid_arg "Consensus.relay: bad id";
  t.relays.(id)

let sample_guard t rng = Prng.Alias.sample t.guard_sampler rng
let sample_middle t rng = Prng.Alias.sample t.middle_sampler rng
let sample_exit t rng = Prng.Alias.sample t.exit_sampler rng
let sample_rendezvous = sample_middle
let guard_ids t = t.guard_ids
let exit_ids t = t.exit_ids
let hsdir_ids t = t.hsdir_ids

let fraction_of total weight_of t ids =
  let w = List.fold_left (fun acc id -> acc +. weight_of (relay t id)) 0.0 ids in
  w /. total t

let guard_fraction t = fraction_of (fun t -> t.total_guard) Relay.guard_weight t
let exit_fraction t = fraction_of (fun t -> t.total_exit) Relay.exit_weight t
let middle_fraction t = fraction_of (fun t -> t.total_middle) Relay.middle_weight t

let pick_observers_by_weight t rng ~role ~target_fraction =
  if target_fraction <= 0.0 || target_fraction > 1.0 then
    invalid_arg "Consensus.pick_observers_by_weight: bad fraction";
  let candidates, weight_of, total =
    match role with
    | `Guard -> (t.guard_ids, Relay.guard_weight, t.total_guard)
    | `Exit -> (t.exit_ids, Relay.exit_weight, t.total_exit)
    | `Middle -> (Array.map (fun r -> r.Relay.id) t.relays, Relay.middle_weight, t.total_middle)
  in
  let pool = Array.copy candidates in
  Prng.Rng.shuffle rng pool;
  (* A real deployment runs several ordinary relays, not one giant one:
     prefer relays individually below half the target share so the set
     has a few members; fall back to anything if that underflows. *)
  let cap = Float.max (target_fraction /. 2.0) 0.002 *. total in
  let pick ~use_cap =
    let rec go i acc acc_w =
      if acc_w >= target_fraction *. total || i >= Array.length pool then (acc, acc_w)
      else
        let id = pool.(i) in
        let w = weight_of (relay t id) in
        if use_cap && w > cap then go (i + 1) acc acc_w
        else go (i + 1) (id :: acc) (acc_w +. w)
    in
    go 0 [] 0.0
  in
  let capped, capped_w = pick ~use_cap:true in
  if capped_w >= target_fraction *. total then capped else fst (pick ~use_cap:false)

let total_guard_weight t = t.total_guard
let total_exit_weight t = t.total_exit
