(** The simulation engine. A workload driver (lib/workload) calls the
    action functions; the engine routes each action through
    consensus-weighted relay choices, updates exact ground truth, and
    delivers observation events to the collectors registered at
    observer relays. *)

type t

val create : ?seed:int -> Consensus.t -> t

val consensus : t -> Consensus.t
val truth : t -> Ground_truth.t
val rng : t -> Prng.Rng.t
val hsdir_ring : t -> Hsdir_ring.t
val onion_registry : t -> Onion.t

val add_sink : t -> Relay.id -> (Event.t -> unit) -> unit
(** Register a data collector at a relay; every event observed at that
    relay is passed to the sink. *)

val clear_sinks : t -> unit

(* --- client-side actions (observed at guards) --- *)

val connect : t -> Client.t -> unit
(** One TCP connection from the client to one of its guards. *)

val connect_all_guards : t -> Client.t -> unit
(** Promiscuous behaviour: one connection to every guard in the
    client's set. *)

val data_circuit : t -> Client.t -> unit
(** Build one general-purpose circuit through the primary guard. *)

val directory_circuit : t -> Client.t -> unit
(** Directory fetch circuit through one of the directory guards; also
    counted by the Tor-Metrics-style baseline estimator. *)

val entry_bytes : t -> Client.t -> float -> unit

(* --- exit-side actions (observed at exits) --- *)

val exit_visit :
  t -> Client.t -> dest:Event.dest -> port:int -> subsequent_streams:int ->
  ?subsequent_dest:(int -> Event.dest * int) ->
  bytes:float -> unit -> unit
(** One website visit: a fresh circuit whose first stream carries the
    user-intended destination, followed by [subsequent_streams] streams
    for embedded resources (paper §4.1). [subsequent_dest i] supplies
    the destination of the i-th embedded-resource stream (third-party
    CDN/ad hosts in the realistic workload); default: the page's own
    host. *)

(* --- onion-service actions (observed at HSDirs / rendezvous points) --- *)

val publish_descriptor : t -> address:string -> first_publish:bool -> unit
(** Store a descriptor at all responsible HSDirs. *)

val publish_signed : t -> Descriptor.t -> first_publish:bool -> bool
(** Signed publish: every responsible HSDir verifies the descriptor's
    signature and address derivation before storing (rend-spec
    behaviour). Returns false — and stores nothing — for an invalid
    descriptor. *)

val fetch_descriptor : t -> address:string -> unit
(** Client-side descriptor fetch at one responsible HSDir; succeeds iff
    a service with this address has published. *)

val fetch_malformed : t -> unit
(** A malformed request hits a random HSDir. *)

val rendezvous : t -> outcome:Event.rend_outcome -> unit
(** One rendezvous circuit at a weighted-random rendezvous point. A
    successful end-to-end rendezvous is two circuits at the RP; drivers
    call this twice for success cases (paper §6.3). *)
