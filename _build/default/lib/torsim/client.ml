(* A simulated Tor client. Selective clients hold a small fixed set of
   guards (1 data guard + directory guards, g in {3,4,5}); promiscuous
   clients (bridges, tor2web front-ends, large NATs) contact every
   guard over a day (paper §5.1). *)

type kind = Selective | Promiscuous

type t = {
  ip : int;
  country : string;
  asn : int;
  kind : kind;
  guards : Relay.id array;  (* the guards this client contacts *)
}

let make_selective consensus rng ~ip ~country ~asn ~g =
  if g < 1 then invalid_arg "Client.make_selective: g must be >= 1";
  (* g independent weighted draws (rarely, two coincide on a large
     relay). The FIRST draw is the data guard, so the primary-guard
     marginal is weight-proportional; and because draws are iid, a
     relay set holding fraction f of guard weight sees the client with
     probability exactly 1 - (1-f)^g — the visibility model Table 3's
     inference inverts (sorting by id, or forcing distinctness, would
     bias both). *)
  let guards = Array.init g (fun _ -> Consensus.sample_guard consensus rng) in
  { ip; country; asn; kind = Selective; guards }

let make_promiscuous consensus ~ip ~country ~asn =
  { ip; country; asn; kind = Promiscuous; guards = Array.copy (Consensus.guard_ids consensus) }

let primary_guard t = t.guards.(0)

let some_guard t rng = t.guards.(Prng.Rng.below rng (Array.length t.guards))
