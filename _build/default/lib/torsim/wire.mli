(** Line-based serialization of observation events — the shape of the
    interface between the patched Tor and the PrivCount/PSC data
    collectors (Tor control-port events). Lets collectors be driven
    from recorded event logs and lets the simulator's output be piped
    to external tools. *)

val to_line : Event.t -> string
(** One event per line; fields are space-separated [key=value] pairs
    with percent-escaped values. *)

val of_line : string -> (Event.t, string) result
(** Parse one line; [Error reason] on malformed input. *)

val write_log : out_channel -> Event.t list -> unit

val read_log : in_channel -> (Event.t list, string) result
(** Stops at the first malformed line. *)
