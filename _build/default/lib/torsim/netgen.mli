(** Synthetic consensus generation with a heavy-tailed (Pareto)
    bandwidth distribution and flag probabilities close to the live
    network's mix. *)

type config = {
  relays : int;
  guard_prob : float;
  exit_prob : float;
  hsdir_prob : float;
  pareto_alpha : float;
  pareto_cap : float;
      (** truncation of the bandwidth tail: no synthetic mega-relay *)
}

val default : config

val generate : ?config:config -> Prng.Rng.t -> Consensus.t
(** Always yields at least one guard, one exit and one HSDir. *)
