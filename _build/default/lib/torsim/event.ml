(* The observation events our patched Tor emits to PrivCount/PSC data
   collectors (paper §3.1). Each event is observed at one relay; the
   engine only materializes events at relays that have a registered
   collector, mirroring how only our 16 relays ran the patched Tor. *)

type dest = Hostname of string | Ipv4_literal | Ipv6_literal

type stream_kind = Initial | Subsequent

type fetch_result =
  | Fetch_ok of { public : bool }  (* descriptor served; [public] = listed in the (ahmia-like) index *)
  | Fetch_missing                  (* no such descriptor in the DHT *)
  | Fetch_malformed                (* unparseable request *)

type rend_outcome =
  | Rend_success of { cells : int }  (* active circuit; cells carried *)
  | Rend_closed                      (* connection closed before completion *)
  | Rend_expired                     (* circuit timed out before completion *)

type circuit_kind = Data_circuit | Directory_circuit

type t =
  | Client_connection of { client_ip : int; country : string; asn : int }
  | Client_circuit of { client_ip : int; country : string; asn : int; kind : circuit_kind }
  | Entry_bytes of { client_ip : int; country : string; asn : int; bytes : float }
  | Directory_request of { client_ip : int }
  | Exit_stream of { kind : stream_kind; dest : dest; port : int }
  | Exit_bytes of { bytes : float }
  | Descriptor_published of { address : string; first_publish : bool }
  | Descriptor_fetch of { address : string; result : fetch_result }
  | Rendezvous_circuit of { outcome : rend_outcome }

let is_web_port port = port = 80 || port = 443

let describe = function
  | Client_connection _ -> "client-connection"
  | Client_circuit _ -> "client-circuit"
  | Entry_bytes _ -> "entry-bytes"
  | Directory_request _ -> "directory-request"
  | Exit_stream _ -> "exit-stream"
  | Exit_bytes _ -> "exit-bytes"
  | Descriptor_published _ -> "descriptor-published"
  | Descriptor_fetch _ -> "descriptor-fetch"
  | Rendezvous_circuit _ -> "rendezvous-circuit"
