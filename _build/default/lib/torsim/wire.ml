let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '=' -> Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if s.[i] = '%' then
      if i + 2 >= n then Error "truncated escape"
      else
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
          Buffer.add_char b (Char.chr code);
          go (i + 3)
        | None -> Error "bad escape"
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

let kv key value = Printf.sprintf "%s=%s" key (escape value)

let client_fields ~client_ip ~country ~asn =
  [ kv "ip" (string_of_int client_ip); kv "cc" country; kv "asn" (string_of_int asn) ]

let to_line event =
  let parts =
    match event with
    | Event.Client_connection { client_ip; country; asn } ->
      "CONN" :: client_fields ~client_ip ~country ~asn
    | Event.Client_circuit { client_ip; country; asn; kind } ->
      "CIRC"
      :: kv "kind" (match kind with Event.Data_circuit -> "data" | Event.Directory_circuit -> "dir")
      :: client_fields ~client_ip ~country ~asn
    | Event.Entry_bytes { client_ip; country; asn; bytes } ->
      "BYTES" :: kv "n" (Printf.sprintf "%.0f" bytes) :: client_fields ~client_ip ~country ~asn
    | Event.Directory_request { client_ip } -> [ "DIRREQ"; kv "ip" (string_of_int client_ip) ]
    | Event.Exit_stream { kind; dest; port } ->
      [
        "STREAM";
        kv "kind" (match kind with Event.Initial -> "initial" | Event.Subsequent -> "subsequent");
        (match dest with
        | Event.Hostname h -> kv "host" h
        | Event.Ipv4_literal -> kv "literal" "ipv4"
        | Event.Ipv6_literal -> kv "literal" "ipv6");
        kv "port" (string_of_int port);
      ]
    | Event.Exit_bytes { bytes } -> [ "XBYTES"; kv "n" (Printf.sprintf "%.0f" bytes) ]
    | Event.Descriptor_published { address; first_publish } ->
      [ "HSPUB"; kv "addr" address; kv "first" (string_of_bool first_publish) ]
    | Event.Descriptor_fetch { address; result } ->
      [
        "HSFETCH";
        kv "addr" address;
        (match result with
        | Event.Fetch_ok { public } -> kv "result" (if public then "ok-public" else "ok-unknown")
        | Event.Fetch_missing -> kv "result" "missing"
        | Event.Fetch_malformed -> kv "result" "malformed");
      ]
    | Event.Rendezvous_circuit { outcome } ->
      [
        "REND";
        (match outcome with
        | Event.Rend_success { cells } -> kv "outcome" ("success:" ^ string_of_int cells)
        | Event.Rend_closed -> kv "outcome" "closed"
        | Event.Rend_expired -> kv "outcome" "expired");
      ]
  in
  String.concat " " parts

let fields_of parts =
  List.filter_map
    (fun part ->
      match String.index_opt part '=' with
      | None -> None
      | Some i ->
        Some (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1)))
    parts

let ( let* ) = Result.bind

let lookup fields key =
  match List.assoc_opt key fields with
  | None -> Error (Printf.sprintf "missing field %s" key)
  | Some raw -> unescape raw

let lookup_int fields key =
  let* v = lookup fields key in
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %s is not an integer" key)

let client_of fields =
  let* client_ip = lookup_int fields "ip" in
  let* country = lookup fields "cc" in
  let* asn = lookup_int fields "asn" in
  Ok (client_ip, country, asn)

let of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [] | [ "" ] -> Error "empty line"
  | tag :: rest -> (
    let fields = fields_of rest in
    match tag with
    | "CONN" ->
      let* client_ip, country, asn = client_of fields in
      Ok (Event.Client_connection { client_ip; country; asn })
    | "CIRC" ->
      let* client_ip, country, asn = client_of fields in
      let* kind = lookup fields "kind" in
      let* kind =
        match kind with
        | "data" -> Ok Event.Data_circuit
        | "dir" -> Ok Event.Directory_circuit
        | other -> Error ("unknown circuit kind " ^ other)
      in
      Ok (Event.Client_circuit { client_ip; country; asn; kind })
    | "BYTES" ->
      let* client_ip, country, asn = client_of fields in
      let* n = lookup_int fields "n" in
      Ok (Event.Entry_bytes { client_ip; country; asn; bytes = float_of_int n })
    | "DIRREQ" ->
      let* client_ip = lookup_int fields "ip" in
      Ok (Event.Directory_request { client_ip })
    | "STREAM" ->
      let* kind = lookup fields "kind" in
      let* kind =
        match kind with
        | "initial" -> Ok Event.Initial
        | "subsequent" -> Ok Event.Subsequent
        | other -> Error ("unknown stream kind " ^ other)
      in
      let* port = lookup_int fields "port" in
      let* dest =
        match (lookup fields "host", lookup fields "literal") with
        | Ok h, _ -> Ok (Event.Hostname h)
        | _, Ok "ipv4" -> Ok Event.Ipv4_literal
        | _, Ok "ipv6" -> Ok Event.Ipv6_literal
        | _, Ok other -> Error ("unknown literal " ^ other)
        | Error _, Error _ -> Error "stream without destination"
      in
      Ok (Event.Exit_stream { kind; dest; port })
    | "XBYTES" ->
      let* n = lookup_int fields "n" in
      Ok (Event.Exit_bytes { bytes = float_of_int n })
    | "HSPUB" ->
      let* address = lookup fields "addr" in
      let* first = lookup fields "first" in
      let* first_publish =
        match bool_of_string_opt first with
        | Some b -> Ok b
        | None -> Error "bad first flag"
      in
      Ok (Event.Descriptor_published { address; first_publish })
    | "HSFETCH" ->
      let* address = lookup fields "addr" in
      let* result = lookup fields "result" in
      let* result =
        match result with
        | "ok-public" -> Ok (Event.Fetch_ok { public = true })
        | "ok-unknown" -> Ok (Event.Fetch_ok { public = false })
        | "missing" -> Ok Event.Fetch_missing
        | "malformed" -> Ok Event.Fetch_malformed
        | other -> Error ("unknown fetch result " ^ other)
      in
      Ok (Event.Descriptor_fetch { address; result })
    | "REND" ->
      let* outcome = lookup fields "outcome" in
      let* outcome =
        match String.split_on_char ':' outcome with
        | [ "success"; cells ] -> (
          match int_of_string_opt cells with
          | Some cells -> Ok (Event.Rend_success { cells })
          | None -> Error "bad cell count")
        | [ "closed" ] -> Ok Event.Rend_closed
        | [ "expired" ] -> Ok Event.Rend_expired
        | _ -> Error "unknown rendezvous outcome"
      in
      Ok (Event.Rendezvous_circuit { outcome })
    | other -> Error ("unknown event tag " ^ other))

let write_log oc events =
  List.iter
    (fun event ->
      output_string oc (to_line event);
      output_char oc '\n')
    events

let read_log ic =
  let rec go acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | line when String.trim line = "" -> go acc
    | line -> (
      match of_line line with
      | Ok event -> go (event :: acc)
      | Error reason -> Error (Printf.sprintf "%s: %s" reason line))
  in
  go []
