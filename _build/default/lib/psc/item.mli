(** Item-to-slot mapping for the oblivious counter tables. The round
    key is distributed by the TS so all DCs agree — that agreement is
    what makes slot-wise combination a set *union*. *)

val slot : key:string -> table_size:int -> string -> int
(** Keyed-hash slot of an item, in [0, table_size). *)
