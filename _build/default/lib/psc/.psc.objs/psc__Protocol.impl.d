lib/psc/protocol.ml: Array Cp Crypto Dp Hashtbl Item List Printf Stats Table
