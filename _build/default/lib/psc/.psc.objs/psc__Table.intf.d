lib/psc/table.mli: Crypto
