lib/psc/protocol.mli: Dp Stats
