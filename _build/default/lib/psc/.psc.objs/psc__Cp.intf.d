lib/psc/cp.mli: Crypto
