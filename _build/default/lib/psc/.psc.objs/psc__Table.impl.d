lib/psc/table.ml: Array Crypto Item List
