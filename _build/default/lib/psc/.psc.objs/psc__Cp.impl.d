lib/psc/cp.ml: Array Crypto Printf
