lib/psc/item.ml: Char Crypto String
