lib/psc/item.mli:
