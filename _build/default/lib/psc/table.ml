(* A DC's oblivious counter table: a fixed-size vector of ElGamal
   ciphertexts under the CPs' joint key. Every slot starts as a fresh
   encryption of the identity (bit 0); inserting an item overwrites its
   slot with a fresh encryption of the non-identity marker (bit 1).
   Because every write is a fresh encryption, the table is oblivious:
   its contents never reveal which slots were touched, or how often. *)

type t = {
  slots : Crypto.Elgamal.ciphertext array;
  key : string;           (* round hash key, shared by all DCs *)
  joint : Crypto.Elgamal.pub;
  drbg : Crypto.Drbg.t;
}

let create ~table_size ~key ~joint ~drbg =
  {
    slots =
      Array.init table_size (fun _ -> Crypto.Elgamal.encrypt drbg joint Crypto.Elgamal.one);
    key;
    joint;
    drbg;
  }

let size t = Array.length t.slots

let insert t item =
  let i = Item.slot ~key:t.key ~table_size:(Array.length t.slots) item in
  t.slots.(i) <- Crypto.Elgamal.encrypt t.drbg t.joint Crypto.Elgamal.marker

(* Slot-wise homomorphic combination of the DCs' tables: identity *
   identity = identity, anything else is non-identity (the marker has
   prime order q, and at most a few hundred DCs multiply in, so the
   product can never cycle back to the identity). This computes the
   encrypted union. *)
let combine tables =
  match tables with
  | [] -> invalid_arg "Table.combine: no tables"
  | first :: rest ->
    let n = size first in
    List.iter
      (fun t -> if size t <> n then invalid_arg "Table.combine: size mismatch")
      rest;
    Array.init n (fun i ->
        List.fold_left
          (fun acc t -> Crypto.Elgamal.mul acc t.slots.(i))
          first.slots.(i) rest)
