(* PSC items are opaque strings (an IP, a second-level domain, an onion
   address, a country code). Items are mapped to table slots with a
   keyed hash; the round key is distributed by the TS so every DC maps
   identical items to identical slots — that is what makes slot-wise
   combination compute a set *union*. *)

let slot ~key ~table_size item =
  if table_size <= 0 then invalid_arg "Item.slot: table_size must be positive";
  let digest = Crypto.Hmac.sha256 ~key item in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code digest.[i]
  done;
  (!v land max_int) mod table_size
