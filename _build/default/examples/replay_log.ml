(* Example: the collector interface is decoupled from the simulator —
   observation events serialize to a line-based log (the shape of Tor's
   control-port events that real PrivCount consumes), and a PrivCount
   deployment can be driven from a replayed log instead of a live
   engine.

   Run with:  dune exec examples/replay_log.exe *)

let () =
  (* 1. simulate a day and record the observer's events to a log file *)
  let rng = Prng.Rng.create 21 in
  let consensus =
    Torsim.Netgen.generate ~config:{ Torsim.Netgen.default with Torsim.Netgen.relays = 200 } rng
  in
  let engine = Torsim.Engine.create ~seed:21 consensus in
  let observers =
    Torsim.Consensus.pick_observers_by_weight consensus rng ~role:`Exit ~target_fraction:0.05
  in
  let recorded = ref [] in
  List.iter
    (fun relay_id ->
      Torsim.Engine.add_sink engine relay_id (fun event -> recorded := event :: !recorded))
    observers;
  let population =
    Workload.Population.build
      ~config:{ Workload.Population.default with Workload.Population.selective = 300; promiscuous = 0 }
      consensus rng
  in
  Workload.Exit_traffic.run engine population rng ~visits:5_000;
  let log_path = Filename.temp_file "tormeasure" ".events" in
  let oc = open_out log_path in
  Torsim.Wire.write_log oc (List.rev !recorded);
  close_out oc;
  Printf.printf "recorded %d events to %s\n" (List.length !recorded) log_path;

  (* 2. later (or on another machine): replay the log into a DC *)
  let ic = open_in log_path in
  let replayed =
    match Torsim.Wire.read_log ic with
    | Ok events -> events
    | Error e -> failwith e
  in
  close_in ic;
  Sys.remove log_path;
  let deployment =
    Privcount.Deployment.create
      (Privcount.Deployment.config ~split_budget:false
         [ Privcount.Counter.spec ~name:"initial_streams" ~sensitivity:1.0 ])
      ~num_dcs:1 ~seed:21
  in
  let handler =
    Privcount.Deployment.handler deployment ~dc:0 (function
      | Torsim.Event.Exit_stream { kind = Torsim.Event.Initial; _ } ->
        [ ("initial_streams", 1) ]
      | _ -> [])
  in
  List.iter handler replayed;
  let results = Privcount.Deployment.tally deployment in
  let r = Privcount.Ts.value_exn results "initial_streams" in
  Printf.printf "replayed %d events; noisy initial-stream count: %.0f (sigma %.1f)\n"
    (List.length replayed) r.Privcount.Ts.value r.Privcount.Ts.sigma;
  Printf.printf "events parse/serialize losslessly: %b\n"
    (List.for_all
       (fun e -> Torsim.Wire.of_line (Torsim.Wire.to_line e) = Ok e)
       replayed)
