(* Example: which sites do Tor users visit? A small-scale version of the
   paper's §4.3 exit-domain study — PrivCount histogram over Alexa rank
   buckets and the torproject.org share of primary domains.

   Run with:  dune exec examples/exit_domains.exe *)

let () =
  let outcome = Tormeasure.Exp_alexa.run ~seed:11 ~visits:40_000 () in
  Tormeasure.Report.print outcome.Tormeasure.Exp_alexa.report;
  Printf.printf "\nheadline shares recovered through the DP pipeline:\n";
  Printf.printf "  torproject.org : %.1f%% of primary domains (paper: ~40%%)\n"
    outcome.Tormeasure.Exp_alexa.torproject_pct;
  Printf.printf "  amazon family  : %.1f%% (paper: ~9.7%%)\n"
    outcome.Tormeasure.Exp_alexa.amazon_pct;
  Printf.printf "  in Alexa top-1M: %.1f%% (paper: ~80%%)\n"
    outcome.Tormeasure.Exp_alexa.alexa_coverage_pct
