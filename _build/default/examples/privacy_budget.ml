(* Example: the safety methodology of §3.2/§8 as code — derive the
   action bounds from activity models, calibrate the noise of each
   planned statistic, schedule the campaign through the accountant
   (no parallel measurements, 24h gaps), and account the total privacy
   spend under basic and advanced composition.

   Run with:  dune exec examples/privacy_budget.exe *)

let () =
  let params = Dp.Mechanism.paper_params in
  Printf.printf "privacy parameters: eps = %.1f, delta = %g (paper section 3.2)\n\n"
    params.Dp.Mechanism.epsilon params.Dp.Mechanism.delta;

  (* 1. the action bounds, derived, with the noise each one implies *)
  Printf.printf "%-44s %10s %14s\n" "protected action (24h)" "bound" "gaussian sigma";
  List.iter
    (fun action ->
      let bound = Dp.Action_bounds.bound_value action in
      let sigma = Dp.Mechanism.gaussian_sigma params ~sensitivity:bound in
      Printf.printf "%-44s %10.0f %14.0f\n" (Dp.Action_bounds.action_name action) bound sigma)
    Dp.Action_bounds.all_actions;

  (* 2. a campaign schedule: one statistic per day, 24h apart *)
  let accountant = Dp.Accountant.create () in
  let statistics =
    [ "exit streams"; "alexa rank"; "alexa siblings"; "tlds"; "unique slds"; "client conns";
      "unique ips"; "countries"; "ases"; "onion publishes"; "onion fetches"; "rendezvous" ]
  in
  List.iteri
    (fun day statistic ->
      Dp.Accountant.register accountant ~start_hour:(day * 48) ~duration_hours:24
        ~system:(if day mod 2 = 0 then Dp.Accountant.PrivCount else Dp.Accountant.PSC)
        ~statistic ~params)
    statistics;
  let total = Dp.Accountant.total_spend accountant in
  Printf.printf "\ncampaign: %d measurements, 48h apart\n" (List.length statistics);
  Printf.printf "basic-composition spend  : eps = %.2f, delta = %g\n" total.Dp.Mechanism.epsilon
    total.Dp.Mechanism.delta;
  let advanced =
    Dp.Composition.advanced params ~rounds:(List.length statistics) ~delta_slack:1e-9
  in
  Printf.printf "advanced-composition bound: eps = %.2f, delta = %g\n"
    advanced.Dp.Mechanism.epsilon advanced.Dp.Mechanism.delta;

  (* 3. one 24h window never sees more than a single publication *)
  let w = Dp.Accountant.window_spend accountant ~window_start:0 in
  Printf.printf "worst 24h adjacency window: eps = %.2f (a single statistic)\n"
    w.Dp.Mechanism.epsilon;

  (* 4. how many more measurement days a yearly budget allows *)
  let budget = Dp.Mechanism.{ epsilon = 5.0; delta = 1e-6 } in
  let k =
    Dp.Composition.rounds_within_budget ~per_round:params ~budget ~delta_slack:1e-8
  in
  Printf.printf "a (5.0, 1e-6) yearly budget funds %d such measurements\n" k
