examples/onion_services.ml: Printf Tormeasure
