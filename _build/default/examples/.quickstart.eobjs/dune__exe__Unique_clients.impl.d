examples/unique_clients.ml: Array Dp List Printf Prng Psc Stats Torsim Workload
