examples/replay_log.mli:
