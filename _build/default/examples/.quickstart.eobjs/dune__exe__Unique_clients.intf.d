examples/unique_clients.mli:
