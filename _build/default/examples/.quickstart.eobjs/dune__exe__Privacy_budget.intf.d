examples/privacy_budget.mli:
