examples/replay_log.ml: Filename List Printf Privcount Prng Sys Torsim Workload
