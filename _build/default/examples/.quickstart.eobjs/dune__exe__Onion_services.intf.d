examples/onion_services.mli:
