examples/exit_domains.ml: Printf Tormeasure
