examples/quickstart.ml: Float List Printf Privcount Prng Stats Torsim Workload
