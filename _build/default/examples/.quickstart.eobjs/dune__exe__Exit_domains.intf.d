examples/exit_domains.mli:
