examples/privacy_budget.ml: Dp List Printf
