examples/quickstart.mli:
