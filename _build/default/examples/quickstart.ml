(* Quickstart: build a small simulated Tor network, attach a PrivCount
   deployment to a few exit relays, drive a day of traffic, and publish
   a differentially private stream count.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. a synthetic consensus of 200 relays and the simulation engine *)
  let rng = Prng.Rng.create 7 in
  let consensus =
    Torsim.Netgen.generate ~config:{ Torsim.Netgen.default with Torsim.Netgen.relays = 200 } rng
  in
  let engine = Torsim.Engine.create ~seed:7 consensus in

  (* 2. observer relays: ~5% of exit weight, like running a few relays *)
  let observers =
    Torsim.Consensus.pick_observers_by_weight consensus rng ~role:`Exit ~target_fraction:0.05
  in
  let fraction = Torsim.Consensus.exit_fraction consensus observers in
  Printf.printf "observing %d exit relays holding %.2f%% of exit weight\n"
    (List.length observers) (100.0 *. fraction);

  (* 3. a PrivCount deployment: 1 TS, 3 SKs, one DC per observer; one
     counter for exit streams with the paper's (eps, delta) = (0.3, 1e-11) *)
  let specs = [ Privcount.Counter.spec ~name:"streams" ~sensitivity:1.0 ] in
  let deployment =
    Privcount.Deployment.create
      (Privcount.Deployment.config ~split_budget:false specs)
      ~num_dcs:(List.length observers) ~seed:7
  in
  List.iteri
    (fun dc relay_id ->
      Torsim.Engine.add_sink engine relay_id
        (Privcount.Deployment.handler deployment ~dc (function
          | Torsim.Event.Exit_stream _ -> [ ("streams", 1) ]
          | _ -> [])))
    observers;

  (* 4. one simulated day of web traffic *)
  let population =
    Workload.Population.build
      ~config:{ Workload.Population.default with Workload.Population.selective = 500; promiscuous = 0 }
      consensus rng
  in
  Workload.Exit_traffic.run engine population rng ~visits:20_000;

  (* 5. tally: the TS unblinds the noisy aggregate; extrapolate by 1/p *)
  let results = Privcount.Deployment.tally deployment in
  let r = Privcount.Ts.value_exn results "streams" in
  let network = Stats.Extrapolate.count ~fraction r.Privcount.Ts.value in
  let network_ci = Stats.Extrapolate.count_ci ~fraction r.Privcount.Ts.ci in
  let truth = Torsim.Engine.truth engine in
  Printf.printf "noisy local count : %.0f (sigma %.1f)\n" r.Privcount.Ts.value r.Privcount.Ts.sigma;
  Printf.printf "network inference : %.0f, 95%% CI [%.0f; %.0f]\n" network
    network_ci.Stats.Ci.lo network_ci.Stats.Ci.hi;
  Printf.printf "ground truth      : %d streams\n" truth.Torsim.Ground_truth.streams_total;
  (* the published CI carries only the DP noise, as in the paper; the
     few percent of residual error is weighted-sampling variance *)
  let err =
    Float.abs (network -. float_of_int truth.Torsim.Ground_truth.streams_total)
    /. float_of_int truth.Torsim.Ground_truth.streams_total
  in
  Printf.printf "relative error    : %.2f%% (DP noise + sampling variance)\n" (100.0 *. err)
