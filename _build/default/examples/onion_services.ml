(* Example: the hidden-service ecosystem. Publishes descriptors into the
   HSDir DHT, drives descriptor fetches (including the overwhelming
   failure traffic the paper discovered) and rendezvous circuits, and
   measures both with PrivCount at HSDir/RP observers.

   Run with:  dune exec examples/onion_services.exe *)

let () =
  let outcome = Tormeasure.Exp_descriptors.run ~seed:13 ~fetches:120_000 () in
  Tormeasure.Report.print outcome.Tormeasure.Exp_descriptors.report;
  let rend = Tormeasure.Exp_rendezvous.run ~seed:13 ~rend_circuits:120_000 () in
  Tormeasure.Report.print rend.Tormeasure.Exp_rendezvous.report;
  Printf.printf "\nonion-service health at a glance:\n";
  Printf.printf "  descriptor fetch failure rate : %.1f%% (paper: 90.9%%)\n"
    (100.0 *. outcome.Tormeasure.Exp_descriptors.fail_rate);
  Printf.printf "  rendezvous success rate       : %.2f%% (paper: 8.08%%)\n"
    rend.Tormeasure.Exp_rendezvous.success_pct;
  Printf.printf "  -> most onion-service activity on Tor is failing automation\n"
