open Torsim

let rng () = Prng.Rng.create 17

let small_consensus ?(relays = 120) () =
  Netgen.generate ~config:{ Netgen.default with Netgen.relays } (rng ())

(* --- relays and consensus --- *)

let test_relay_weights () =
  let guard = Relay.make ~id:0 ~nickname:"g" ~bandwidth:100.0 ~guard:true ~exit:false ~hsdir:true in
  Alcotest.(check (float 1e-9)) "guard position" (100.0 *. Relay.wgg) (Relay.guard_weight guard);
  Alcotest.(check (float 1e-9)) "guard middle share" (100.0 *. (1.0 -. Relay.wgg))
    (Relay.middle_weight guard);
  Alcotest.(check (float 0.0)) "guard exit weight" 0.0 (Relay.exit_weight guard);
  Alcotest.(check bool) "hsdir" true (Relay.is_hsdir guard);
  let exit = Relay.make ~id:1 ~nickname:"e" ~bandwidth:50.0 ~guard:false ~exit:true ~hsdir:false in
  Alcotest.(check (float 0.0)) "exit weight" 50.0 (Relay.exit_weight exit);
  Alcotest.(check (float 0.0)) "exit middle weight" 0.0 (Relay.middle_weight exit);
  let middle = Relay.make ~id:2 ~nickname:"m" ~bandwidth:30.0 ~guard:false ~exit:false ~hsdir:false in
  Alcotest.(check (float 0.0)) "pure middle" 30.0 (Relay.middle_weight middle);
  (* exit bandwidth is reserved: a guard+exit relay serves exits only *)
  let both = Relay.make ~id:3 ~nickname:"b" ~bandwidth:80.0 ~guard:true ~exit:true ~hsdir:false in
  Alcotest.(check (float 0.0)) "both: no guard duty" 0.0 (Relay.guard_weight both);
  Alcotest.(check (float 0.0)) "both: exit duty" 80.0 (Relay.exit_weight both)

let test_relay_rejects_nonpositive_bandwidth () =
  Alcotest.check_raises "bad bandwidth" (Invalid_argument "Relay.make: bandwidth must be positive")
    (fun () ->
      ignore (Relay.make ~id:0 ~nickname:"x" ~bandwidth:0.0 ~guard:true ~exit:true ~hsdir:true))

let test_consensus_roles_nonempty () =
  let c = small_consensus () in
  Alcotest.(check bool) "guards" true (Array.length (Consensus.guard_ids c) > 0);
  Alcotest.(check bool) "exits" true (Array.length (Consensus.exit_ids c) > 0);
  Alcotest.(check bool) "hsdirs" true (Array.length (Consensus.hsdir_ids c) > 0)

let test_consensus_sampling_respects_flags () =
  let c = small_consensus () in
  let r = rng () in
  for _ = 1 to 500 do
    let g = Consensus.sample_guard c r in
    if not (Consensus.relay c g).Relay.flags.Relay.guard then Alcotest.fail "non-guard sampled";
    let e = Consensus.sample_exit c r in
    if not (Consensus.relay c e).Relay.flags.Relay.exit then Alcotest.fail "non-exit sampled"
  done

let test_consensus_weighted_sampling () =
  (* a relay with overwhelming weight should dominate samples *)
  let relays =
    Array.init 10 (fun id ->
        Relay.make ~id ~nickname:(string_of_int id)
          ~bandwidth:(if id = 0 then 10_000.0 else 1.0)
          ~guard:true ~exit:(id = 9) ~hsdir:false)
  in
  let c = Consensus.create relays in
  let r = rng () in
  let hits = ref 0 in
  for _ = 1 to 1_000 do
    if Consensus.sample_guard c r = 0 then incr hits
  done;
  Alcotest.(check bool) "heavy relay dominates" true (!hits > 950)

let test_fractions_sum () =
  let c = small_consensus () in
  let all_guards = Array.to_list (Consensus.guard_ids c) in
  Alcotest.(check (float 1e-9)) "all guards = 1" 1.0 (Consensus.guard_fraction c all_guards);
  Alcotest.(check (float 1e-9)) "none = 0" 0.0 (Consensus.guard_fraction c [])

let test_pick_observers_by_weight () =
  let c = small_consensus ~relays:300 () in
  let r = rng () in
  let ids = Consensus.pick_observers_by_weight c r ~role:`Exit ~target_fraction:0.05 in
  let f = Consensus.exit_fraction c ids in
  Alcotest.(check bool) "reaches target" true (f >= 0.05);
  (* greedy selection should not wildly overshoot on a 300-relay net *)
  Alcotest.(check bool) "not far past target" true (f < 0.6)

let test_consensus_dense_ids_required () =
  let relays =
    [| Relay.make ~id:5 ~nickname:"x" ~bandwidth:1.0 ~guard:true ~exit:true ~hsdir:true |]
  in
  Alcotest.check_raises "dense ids" (Invalid_argument "Consensus.create: ids must be dense 0..n-1")
    (fun () -> ignore (Consensus.create relays))

(* --- hsdir ring --- *)

let test_ring_responsible_count () =
  let c = small_consensus () in
  let ring = Hsdir_ring.create (Consensus.hsdir_ids c) in
  let resp = Hsdir_ring.responsible ring "abcdef.onion" in
  Alcotest.(check bool) "at most slots" true (List.length resp <= Hsdir_ring.slots ring);
  Alcotest.(check bool) "at least spread" true (List.length resp >= Hsdir_ring.spread ring);
  (* all distinct *)
  Alcotest.(check int) "distinct" (List.length resp)
    (List.length (List.sort_uniq compare resp))

let test_ring_deterministic () =
  let c = small_consensus () in
  let ring = Hsdir_ring.create (Consensus.hsdir_ids c) in
  Alcotest.(check (list int)) "stable responsibility"
    (Hsdir_ring.responsible ring "x.onion")
    (Hsdir_ring.responsible ring "x.onion")

let test_ring_members_are_hsdirs () =
  let c = small_consensus () in
  let hsdirs = Consensus.hsdir_ids c in
  let ring = Hsdir_ring.create hsdirs in
  List.iter
    (fun id ->
      if not (Array.mem id hsdirs) then Alcotest.fail "responsible relay is not an HSDir")
    (Hsdir_ring.responsible ring "y.onion")

let test_ring_slot_fraction () =
  let c = small_consensus () in
  let hsdirs = Consensus.hsdir_ids c in
  let ring = Hsdir_ring.create hsdirs in
  Alcotest.(check (float 1e-9)) "all = 1" 1.0
    (Hsdir_ring.expected_slot_fraction ring (Array.to_list hsdirs));
  Alcotest.(check (float 1e-9)) "none = 0" 0.0 (Hsdir_ring.expected_slot_fraction ring []);
  (* non-hsdir relays contribute nothing *)
  let non_hsdir =
    Array.to_list (Consensus.relays c)
    |> List.filter (fun r -> not (Relay.is_hsdir r))
    |> List.map (fun r -> r.Relay.id)
  in
  Alcotest.(check (float 1e-9)) "non-hsdirs = 0" 0.0
    (Hsdir_ring.expected_slot_fraction ring non_hsdir)

let test_ring_visibility_bounds () =
  let c = small_consensus ~relays:200 () in
  let hsdirs = Consensus.hsdir_ids c in
  let ring = Hsdir_ring.create hsdirs in
  let observers = Array.to_list (Array.sub hsdirs 0 5) in
  let fetch = Hsdir_ring.fetch_visibility ~samples:5_000 ring observers in
  let publish = Hsdir_ring.publish_visibility ~samples:5_000 ring observers in
  Alcotest.(check bool) "fetch in (0,1)" true (fetch > 0.0 && fetch < 1.0);
  Alcotest.(check bool) "publish >= fetch" true (publish >= fetch);
  Alcotest.(check (float 1e-9)) "all observers publish = 1" 1.0
    (Hsdir_ring.publish_visibility ~samples:500 ring (Array.to_list hsdirs));
  Alcotest.(check (float 1e-9)) "no observers = 0" 0.0
    (Hsdir_ring.fetch_visibility ~samples:500 ring [])

let test_ring_fetch_visibility_matches_empirical () =
  (* the analytical visibility must predict the rate at which actual
     fetch events land at the observers *)
  let c = small_consensus ~relays:200 () in
  let e = Engine.create ~seed:5 c in
  let ring = Engine.hsdir_ring e in
  let hsdirs = Consensus.hsdir_ids c in
  let observers = Array.to_list (Array.sub hsdirs 0 8) in
  let predicted = Hsdir_ring.fetch_visibility ~samples:10_000 ring observers in
  let seen = ref 0 in
  List.iter
    (fun id ->
      Engine.add_sink e id (fun ev ->
          match ev with Event.Descriptor_fetch _ -> incr seen | _ -> ()))
    observers;
  let n = 20_000 in
  for i = 0 to n - 1 do
    Engine.fetch_descriptor e ~address:(Onion.bogus_address i)
  done;
  let empirical = float_of_int !seen /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "predicted %.4f vs empirical %.4f" predicted empirical)
    true
    (Float.abs (predicted -. empirical) < 0.01)

let test_exit_visit_third_party_dest () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let r = rng () in
  let client = Client.make_selective c r ~ip:7 ~country:"US" ~asn:42 ~g:1 in
  Engine.exit_visit e client ~dest:(Event.Hostname "page.com") ~port:443
    ~subsequent_streams:3
    ~subsequent_dest:(fun i -> (Event.Hostname (Printf.sprintf "cdn%d.com" i), 443))
    ~bytes:1.0 ();
  let t = Engine.truth e in
  (* only the initial stream's hostname counts as a unique (primary) domain *)
  Alcotest.(check int) "one primary domain" 1 (Ground_truth.unique_domains t);
  Alcotest.(check int) "four streams total" 4 t.Ground_truth.streams_total

let test_ring_balanced () =
  (* over many descriptors, responsibility should spread over the ring *)
  let c = small_consensus ~relays:200 () in
  let ring = Hsdir_ring.create (Consensus.hsdir_ids c) in
  let counts = Hashtbl.create 64 in
  for i = 0 to 999 do
    List.iter
      (fun id ->
        Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
      (Hsdir_ring.responsible ring (Onion.address_of_index i))
  done;
  Alcotest.(check bool) "most hsdirs used" true
    (Hashtbl.length counts > Hsdir_ring.size ring / 2)

(* --- clients --- *)

let test_selective_client_guard_count () =
  let c = small_consensus () in
  let r = rng () in
  let client = Client.make_selective c r ~ip:1 ~country:"US" ~asn:1 ~g:3 in
  Alcotest.(check int) "three guard draws" 3 (Array.length client.Client.guards);
  Array.iter
    (fun id ->
      if not (Consensus.relay c id).Relay.flags.Relay.guard then
        Alcotest.fail "non-guard in guard set")
    client.Client.guards

let test_selective_visibility_model () =
  (* the inference model: a relay set with guard-weight fraction f sees
     a g-guard client with probability 1 - (1-f)^g *)
  let c = small_consensus ~relays:300 () in
  let r = rng () in
  let observers = Consensus.pick_observers_by_weight c r ~role:`Guard ~target_fraction:0.1 in
  let f = Consensus.guard_fraction c observers in
  let g = 3 in
  let n = 40_000 in
  let seen = ref 0 in
  for i = 1 to n do
    let client = Client.make_selective c r ~ip:i ~country:"US" ~asn:1 ~g in
    if Array.exists (fun id -> List.mem id observers) client.Client.guards then incr seen
  done;
  let empirical = float_of_int !seen /. float_of_int n in
  let predicted = 1.0 -. ((1.0 -. f) ** float_of_int g) in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.4f vs predicted %.4f" empirical predicted)
    true
    (Float.abs (empirical -. predicted) < 0.01)

let test_promiscuous_client_all_guards () =
  let c = small_consensus () in
  let client = Client.make_promiscuous c ~ip:2 ~country:"DE" ~asn:2 in
  Alcotest.(check int) "all guards" (Array.length (Consensus.guard_ids c))
    (Array.length client.Client.guards)

(* --- engine + ground truth --- *)

let make_engine () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let r = rng () in
  let client = Client.make_selective c r ~ip:7 ~country:"US" ~asn:42 ~g:3 in
  (e, client)

let test_engine_truth_connections () =
  let e, client = make_engine () in
  for _ = 1 to 10 do
    Engine.connect e client
  done;
  let t = Engine.truth e in
  Alcotest.(check int) "connections" 10 t.Ground_truth.connections;
  Alcotest.(check int) "one unique ip" 1 (Ground_truth.unique_clients t);
  Alcotest.(check int) "per-country" 10 (Ground_truth.country_connections t "US")

let test_engine_truth_streams () =
  let e, client = make_engine () in
  Engine.exit_visit e client ~dest:(Event.Hostname "a.com") ~port:443 ~subsequent_streams:4
    ~bytes:100.0 ();
  Engine.exit_visit e client ~dest:Event.Ipv4_literal ~port:80 ~subsequent_streams:0 ~bytes:50.0 ();
  Engine.exit_visit e client ~dest:(Event.Hostname "b.com") ~port:22 ~subsequent_streams:1
    ~bytes:10.0 ();
  let t = Engine.truth e in
  Alcotest.(check int) "total streams" 8 t.Ground_truth.streams_total;
  Alcotest.(check int) "initial" 3 t.Ground_truth.streams_initial;
  Alcotest.(check int) "hostname" 2 t.Ground_truth.initial_hostname;
  Alcotest.(check int) "ipv4" 1 t.Ground_truth.initial_ipv4;
  Alcotest.(check int) "web" 1 t.Ground_truth.hostname_web;
  Alcotest.(check int) "other port" 1 t.Ground_truth.hostname_other_port;
  Alcotest.(check int) "unique domains (web only)" 1 (Ground_truth.unique_domains t);
  Alcotest.(check (float 0.001)) "exit bytes" 160.0 t.Ground_truth.exit_bytes

let test_engine_sink_delivery () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let r = rng () in
  let client = Client.make_selective c r ~ip:7 ~country:"US" ~asn:42 ~g:1 in
  let guard = Client.primary_guard client in
  let seen = ref 0 in
  Engine.add_sink e guard (fun _ -> incr seen);
  for _ = 1 to 5 do
    Engine.data_circuit e client
  done;
  Alcotest.(check int) "sink saw all" 5 !seen

let test_engine_sink_only_at_registered_relay () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let r = rng () in
  let client = Client.make_selective c r ~ip:7 ~country:"US" ~asn:42 ~g:1 in
  let guard = Client.primary_guard client in
  let other = (guard + 1) mod Consensus.size c in
  let seen = ref 0 in
  Engine.add_sink e other (fun ev -> match ev with Event.Client_circuit _ -> incr seen | _ -> ());
  Engine.data_circuit e client;
  Alcotest.(check int) "no event at other relay" 0 !seen

let test_engine_clear_sinks () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let r = rng () in
  let client = Client.make_selective c r ~ip:7 ~country:"US" ~asn:42 ~g:1 in
  let seen = ref 0 in
  Engine.add_sink e (Client.primary_guard client) (fun _ -> incr seen);
  Engine.clear_sinks e;
  Engine.data_circuit e client;
  Alcotest.(check int) "nothing after clear" 0 !seen

let test_descriptor_publish_fetch () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let registry = Engine.onion_registry e in
  let service = Onion.add registry ~public:true in
  (* fetch before publish fails *)
  Engine.fetch_descriptor e ~address:service.Onion.address;
  Engine.publish_descriptor e ~address:service.Onion.address ~first_publish:true;
  Engine.fetch_descriptor e ~address:service.Onion.address;
  Engine.fetch_descriptor e ~address:(Onion.bogus_address 1);
  Engine.fetch_malformed e;
  let t = Engine.truth e in
  Alcotest.(check int) "fetches" 4 t.Ground_truth.descriptor_fetches;
  Alcotest.(check int) "ok" 1 t.Ground_truth.descriptor_fetch_ok;
  Alcotest.(check int) "failed" 3 t.Ground_truth.descriptor_fetch_failed;
  Alcotest.(check int) "published unique" 1 (Ground_truth.unique_published_onions t);
  Alcotest.(check int) "fetched unique" 1 (Ground_truth.unique_fetched_onions t)

let test_descriptor_event_at_responsible_hsdir () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let ring = Engine.hsdir_ring e in
  let address = "probe.onion" in
  let responsible = Hsdir_ring.responsible ring address in
  let seen = ref 0 in
  List.iter
    (fun id ->
      Engine.add_sink e id (fun ev ->
          match ev with Event.Descriptor_published _ -> incr seen | _ -> ()))
    responsible;
  Engine.publish_descriptor e ~address ~first_publish:true;
  Alcotest.(check int) "stored at every responsible hsdir" (List.length responsible) !seen

let test_rendezvous_truth () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  Engine.rendezvous e ~outcome:(Event.Rend_success { cells = 100 });
  Engine.rendezvous e ~outcome:(Event.Rend_success { cells = 50 });
  Engine.rendezvous e ~outcome:Event.Rend_closed;
  Engine.rendezvous e ~outcome:Event.Rend_expired;
  let t = Engine.truth e in
  Alcotest.(check int) "circuits" 4 t.Ground_truth.rend_circuits;
  Alcotest.(check int) "success" 2 t.Ground_truth.rend_success;
  Alcotest.(check int) "closed" 1 t.Ground_truth.rend_closed;
  Alcotest.(check int) "expired" 1 t.Ground_truth.rend_expired;
  Alcotest.(check int) "cells" 150 t.Ground_truth.rend_cells

(* --- signed descriptors and v3 blinding --- *)

let test_descriptor_v2_roundtrip () =
  let d = Crypto.Drbg.create "desc-test" in
  let identity = Descriptor.make_identity d in
  let desc = Descriptor.create_v2 d identity ~intro_points:[ 1; 2; 3; 4; 5; 6 ] ~period:42 in
  Alcotest.(check bool) "verifies" true (Descriptor.verify desc);
  Alcotest.(check string) "stable address" identity.Descriptor.v2_address
    desc.Descriptor.address;
  (* tampering with the intro points breaks the signature *)
  let tampered = { desc with Descriptor.intro_points = [ 9 ] } in
  Alcotest.(check bool) "tamper detected" false (Descriptor.verify tampered)

let test_descriptor_v2_address_binding () =
  let d = Crypto.Drbg.create "desc-test2" in
  let identity = Descriptor.make_identity d in
  let other = Descriptor.make_identity d in
  let desc = Descriptor.create_v2 d identity ~intro_points:[ 1 ] ~period:0 in
  (* claiming another service's address fails the address derivation *)
  let forged = { desc with Descriptor.address = other.Descriptor.v2_address } in
  Alcotest.(check bool) "address binding" false (Descriptor.verify forged)

let test_descriptor_v3_blinding () =
  let d = Crypto.Drbg.create "desc-test3" in
  let identity = Descriptor.make_identity d in
  let d1 = Descriptor.create_v3 d identity ~intro_points:[ 1; 2 ] ~period:100 in
  let d2 = Descriptor.create_v3 d identity ~intro_points:[ 1; 2 ] ~period:101 in
  Alcotest.(check bool) "both verify" true (Descriptor.verify d1 && Descriptor.verify d2);
  (* the paper's reason for measuring v2 only: blinded addresses change
     every period and cannot be linked by unique counting *)
  Alcotest.(check bool) "periods unlinkable" true
    (d1.Descriptor.address <> d2.Descriptor.address);
  Alcotest.(check bool) "differs from v2 address" true
    (d1.Descriptor.address <> identity.Descriptor.v2_address);
  (* the derivation is deterministic per period *)
  Alcotest.(check string) "deterministic"
    (Descriptor.v3_blinded_address identity ~period:100)
    d1.Descriptor.address

let test_engine_publish_signed () =
  let c = small_consensus () in
  let e = Engine.create ~seed:3 c in
  let d = Crypto.Drbg.create "pub-test" in
  let identity = Descriptor.make_identity d in
  let desc = Descriptor.create_v2 d identity ~intro_points:[ 1 ] ~period:0 in
  Alcotest.(check bool) "valid stored" true (Engine.publish_signed e desc ~first_publish:true);
  let forged = { desc with Descriptor.intro_points = [ 2 ] } in
  Alcotest.(check bool) "invalid rejected" false (Engine.publish_signed e forged ~first_publish:false);
  let t = Engine.truth e in
  Alcotest.(check int) "one publish" 1 t.Ground_truth.descriptor_publishes;
  Alcotest.(check int) "one rejection" 1 t.Ground_truth.descriptor_publish_rejected;
  (* and the stored descriptor is fetchable once its service is known *)
  Engine.fetch_descriptor e ~address:desc.Descriptor.address;
  Alcotest.(check int) "fetch fails: unknown to registry" 1
    t.Ground_truth.descriptor_fetch_failed

(* --- wire format --- *)

let wire_roundtrip event =
  match Wire.of_line (Wire.to_line event) with
  | Ok event' -> event' = event
  | Error _ -> false

let test_wire_roundtrip_all_kinds () =
  let events =
    [
      Event.Client_connection { client_ip = 7; country = "US"; asn = 42 };
      Event.Client_circuit { client_ip = 7; country = "DE"; asn = 1; kind = Event.Data_circuit };
      Event.Client_circuit { client_ip = 7; country = "DE"; asn = 1; kind = Event.Directory_circuit };
      Event.Entry_bytes { client_ip = 9; country = "AE"; asn = 5; bytes = 123456.0 };
      Event.Directory_request { client_ip = 3 };
      Event.Exit_stream { kind = Event.Initial; dest = Event.Hostname "www.amazon.com"; port = 443 };
      Event.Exit_stream { kind = Event.Subsequent; dest = Event.Ipv4_literal; port = 80 };
      Event.Exit_stream { kind = Event.Initial; dest = Event.Ipv6_literal; port = 22 };
      Event.Exit_bytes { bytes = 512.0 };
      Event.Descriptor_published { address = "abcdef.onion"; first_publish = true };
      Event.Descriptor_fetch { address = "abcdef.onion"; result = Event.Fetch_ok { public = true } };
      Event.Descriptor_fetch { address = "x.onion"; result = Event.Fetch_ok { public = false } };
      Event.Descriptor_fetch { address = ""; result = Event.Fetch_malformed };
      Event.Descriptor_fetch { address = "y.onion"; result = Event.Fetch_missing };
      Event.Rendezvous_circuit { outcome = Event.Rend_success { cells = 1500 } };
      Event.Rendezvous_circuit { outcome = Event.Rend_closed };
      Event.Rendezvous_circuit { outcome = Event.Rend_expired };
    ]
  in
  List.iter
    (fun event ->
      if not (wire_roundtrip event) then
        Alcotest.fail ("roundtrip failed for " ^ Wire.to_line event))
    events

let test_wire_escaping () =
  let event =
    Event.Exit_stream
      { kind = Event.Initial; dest = Event.Hostname "evil host=with%stuff"; port = 80 }
  in
  Alcotest.(check bool) "escaped hostname roundtrips" true (wire_roundtrip event)

let test_wire_rejects_garbage () =
  List.iter
    (fun line ->
      match Wire.of_line line with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ line)
      | Error _ -> ())
    [ ""; "NOPE x=1"; "CONN ip=abc cc=US asn=1"; "STREAM kind=initial port=80";
      "REND outcome=success:xyz"; "HSPUB addr=a.onion first=maybe" ]

let test_wire_log_roundtrip () =
  let events =
    List.init 50 (fun i ->
        Event.Exit_stream
          { kind = (if i mod 2 = 0 then Event.Initial else Event.Subsequent);
            dest = Event.Hostname (Printf.sprintf "s%d.com" i); port = 443 })
  in
  let path = Filename.temp_file "wire" ".log" in
  let oc = open_out path in
  Wire.write_log oc events;
  close_out oc;
  let ic = open_in path in
  let result = Wire.read_log ic in
  close_in ic;
  Sys.remove path;
  match result with
  | Ok events' -> Alcotest.(check int) "all events back" 50 (List.length events')
  | Error e -> Alcotest.fail e

(* --- onion registry --- *)

let test_onion_addresses_unique () =
  let reg = Onion.create () in
  let r = rng () in
  let services = Onion.populate reg ~count:100 ~public_fraction:0.5 r in
  let addresses = List.map (fun s -> s.Onion.address) services in
  Alcotest.(check int) "unique addresses" 100 (List.length (List.sort_uniq compare addresses));
  Alcotest.(check int) "count" 100 (Onion.count reg);
  List.iter
    (fun s ->
      match Onion.find reg s.Onion.address with
      | Some s' -> Alcotest.(check string) "find" s.Onion.address s'.Onion.address
      | None -> Alcotest.fail "service not found")
    services

let test_bogus_addresses_not_registered () =
  let reg = Onion.create () in
  let r = rng () in
  ignore (Onion.populate reg ~count:10 ~public_fraction:0.5 r);
  Alcotest.(check bool) "bogus not found" true (Onion.find reg (Onion.bogus_address 3) = None)

let event_gen =
  let open QCheck.Gen in
  let host = map (Printf.sprintf "s%d.com") (int_bound 100_000) in
  let country = oneofl [ "US"; "RU"; "DE"; "AE"; "XX" ] in
  oneof
    [
      map3
        (fun ip cc asn -> Event.Client_connection { client_ip = ip; country = cc; asn })
        (int_bound 1_000_000) country (int_bound 60_000);
      map3
        (fun ip cc kind ->
          Event.Client_circuit { client_ip = ip; country = cc; asn = 1; kind })
        (int_bound 1_000_000) country
        (oneofl [ Event.Data_circuit; Event.Directory_circuit ]);
      map3
        (fun kind h port -> Event.Exit_stream { kind; dest = Event.Hostname h; port })
        (oneofl [ Event.Initial; Event.Subsequent ])
        host (int_bound 65_535);
      map (fun n -> Event.Exit_bytes { bytes = float_of_int n }) (int_bound 1_000_000_000);
      map2
        (fun addr first -> Event.Descriptor_published { address = addr; first_publish = first })
        host bool;
      map
        (fun cells -> Event.Rendezvous_circuit { outcome = Event.Rend_success { cells } })
        (int_bound 100_000);
    ]

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip" ~count:500 (QCheck.make event_gen) (fun event ->
      Wire.of_line (Wire.to_line event) = Ok event)

let prop_ring_responsibility_stable =
  QCheck.Test.make ~name:"ring responsibility independent of query order" ~count:50
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let c = small_consensus () in
      let ring = Hsdir_ring.create (Consensus.hsdir_ids c) in
      let addr_a = Onion.bogus_address a and addr_b = Onion.bogus_address b in
      let ra1 = Hsdir_ring.responsible ring addr_a in
      let _ = Hsdir_ring.responsible ring addr_b in
      let ra2 = Hsdir_ring.responsible ring addr_a in
      ra1 = ra2)

let prop_event_observed_fraction =
  (* the fraction of exit-stream events landing at an observer set should
     match its exit-weight fraction *)
  QCheck.Test.make ~name:"observer fraction ~ exit weight" ~count:3 QCheck.small_int
    (fun seed ->
      let r = Prng.Rng.create (seed + 1) in
      let c = Netgen.generate ~config:{ Netgen.default with Netgen.relays = 150 } r in
      let e = Engine.create ~seed:(seed + 1) c in
      let observers = Consensus.pick_observers_by_weight c r ~role:`Exit ~target_fraction:0.2 in
      let fraction = Consensus.exit_fraction c observers in
      let seen = ref 0 in
      List.iter
        (fun id ->
          Engine.add_sink e id (fun ev ->
              match ev with Event.Exit_stream _ -> incr seen | _ -> ()))
        observers;
      let client = Client.make_selective c r ~ip:1 ~country:"US" ~asn:1 ~g:1 in
      let n = 4_000 in
      for _ = 1 to n do
        Engine.exit_visit e client ~dest:(Event.Hostname "a.com") ~port:443
          ~subsequent_streams:0 ~bytes:1.0 ()
      done;
      let observed = float_of_int !seen /. float_of_int n in
      Float.abs (observed -. fraction) < 0.05)

let () =
  Alcotest.run "torsim"
    [
      ( "relay/consensus",
        [
          Alcotest.test_case "relay weights" `Quick test_relay_weights;
          Alcotest.test_case "bad bandwidth" `Quick test_relay_rejects_nonpositive_bandwidth;
          Alcotest.test_case "roles nonempty" `Quick test_consensus_roles_nonempty;
          Alcotest.test_case "sampling respects flags" `Quick test_consensus_sampling_respects_flags;
          Alcotest.test_case "weighted sampling" `Quick test_consensus_weighted_sampling;
          Alcotest.test_case "fractions" `Quick test_fractions_sum;
          Alcotest.test_case "pick observers" `Quick test_pick_observers_by_weight;
          Alcotest.test_case "dense ids" `Quick test_consensus_dense_ids_required;
        ] );
      ( "hsdir_ring",
        [
          Alcotest.test_case "responsible count" `Quick test_ring_responsible_count;
          Alcotest.test_case "deterministic" `Quick test_ring_deterministic;
          Alcotest.test_case "members are hsdirs" `Quick test_ring_members_are_hsdirs;
          Alcotest.test_case "slot fraction" `Quick test_ring_slot_fraction;
          Alcotest.test_case "visibility bounds" `Quick test_ring_visibility_bounds;
          Alcotest.test_case "visibility matches empirical" `Quick
            test_ring_fetch_visibility_matches_empirical;
          Alcotest.test_case "balanced" `Quick test_ring_balanced;
        ] );
      ( "client",
        [
          Alcotest.test_case "selective guards" `Quick test_selective_client_guard_count;
          Alcotest.test_case "visibility model" `Quick test_selective_visibility_model;
          Alcotest.test_case "promiscuous guards" `Quick test_promiscuous_client_all_guards;
        ] );
      ( "engine",
        [
          Alcotest.test_case "connection truth" `Quick test_engine_truth_connections;
          Alcotest.test_case "stream truth" `Quick test_engine_truth_streams;
          Alcotest.test_case "sink delivery" `Quick test_engine_sink_delivery;
          Alcotest.test_case "sink isolation" `Quick test_engine_sink_only_at_registered_relay;
          Alcotest.test_case "clear sinks" `Quick test_engine_clear_sinks;
          Alcotest.test_case "third-party subsequent dest" `Quick test_exit_visit_third_party_dest;
          Alcotest.test_case "descriptor publish/fetch" `Quick test_descriptor_publish_fetch;
          Alcotest.test_case "descriptor placement" `Quick test_descriptor_event_at_responsible_hsdir;
          Alcotest.test_case "rendezvous truth" `Quick test_rendezvous_truth;
        ] );
      ( "onion",
        [
          Alcotest.test_case "unique addresses" `Quick test_onion_addresses_unique;
          Alcotest.test_case "bogus unregistered" `Quick test_bogus_addresses_not_registered;
        ] );
      ( "descriptor",
        [
          Alcotest.test_case "v2 roundtrip" `Quick test_descriptor_v2_roundtrip;
          Alcotest.test_case "v2 address binding" `Quick test_descriptor_v2_address_binding;
          Alcotest.test_case "v3 blinding" `Quick test_descriptor_v3_blinding;
          Alcotest.test_case "engine signed publish" `Quick test_engine_publish_signed;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip all kinds" `Quick test_wire_roundtrip_all_kinds;
          Alcotest.test_case "escaping" `Quick test_wire_escaping;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "log roundtrip" `Quick test_wire_log_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_event_observed_fraction; prop_wire_roundtrip; prop_ring_responsibility_stable ] );
    ]
