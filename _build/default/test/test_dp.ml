open Dp

(* --- action bounds (Table 1 derivation) --- *)

let test_bounds_match_paper () =
  List.iter
    (fun (action, paper_bound, _activity) ->
      Alcotest.(check (float 0.0))
        (Action_bounds.action_name action)
        paper_bound
        (Action_bounds.bound_value action))
    Action_bounds.paper_table

let test_defining_activities () =
  List.iter
    (fun (action, bound, paper_activity) ->
      (* the paper's defining activity must achieve the bound *)
      Alcotest.(check (float 0.0))
        (Action_bounds.action_name action)
        bound
        (Action_bounds.lookup paper_activity action))
    Action_bounds.paper_table

let test_bounds_cover_all_actions () =
  List.iter
    (fun action ->
      if Action_bounds.bound_value action <= 0.0 then
        Alcotest.fail (Action_bounds.action_name action ^ " has no positive bound"))
    Action_bounds.all_actions

(* --- gaussian mechanism --- *)

let test_sigma_formula () =
  let params = Mechanism.{ epsilon = 0.3; delta = 1e-11 } in
  let sigma = Mechanism.gaussian_sigma params ~sensitivity:20.0 in
  let expected = 20.0 *. sqrt (2.0 *. log (1.25 /. 1e-11)) /. 0.3 in
  Alcotest.(check (float 1e-9)) "sigma" expected sigma

let test_sigma_scales_linearly () =
  let params = Mechanism.paper_params in
  let s1 = Mechanism.gaussian_sigma params ~sensitivity:1.0 in
  let s10 = Mechanism.gaussian_sigma params ~sensitivity:10.0 in
  Alcotest.(check (float 1e-9)) "linear in sensitivity" (10.0 *. s1) s10

let test_epsilon_roundtrip () =
  let params = Mechanism.{ epsilon = 0.5; delta = 1e-9 } in
  let sigma = Mechanism.gaussian_sigma params ~sensitivity:3.0 in
  Alcotest.(check (float 1e-9)) "epsilon recovered" 0.5
    (Mechanism.epsilon_consumed ~sigma ~sensitivity:3.0 ~delta:1e-9)

let test_mechanism_noise_distribution () =
  let rng = Prng.Rng.create 5 in
  let params = Mechanism.{ epsilon = 1.0; delta = 1e-6 } in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  let sigma = ref 0.0 in
  for _ = 1 to n do
    let noisy, s = Mechanism.gaussian_mechanism rng params ~sensitivity:1.0 100.0 in
    sigma := s;
    let noise = noisy -. 100.0 in
    sum := !sum +. noise;
    sumsq := !sumsq +. (noise *. noise)
  done;
  let mean = !sum /. float_of_int n in
  let sd = sqrt (!sumsq /. float_of_int n) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05 *. !sigma);
  Alcotest.(check bool) "sd near sigma" true (Float.abs (sd -. !sigma) /. !sigma < 0.05)

let test_invalid_params_rejected () =
  Alcotest.check_raises "eps<=0" (Invalid_argument "Mechanism: epsilon must be positive")
    (fun () ->
      ignore (Mechanism.gaussian_sigma Mechanism.{ epsilon = 0.0; delta = 0.5 } ~sensitivity:1.0));
  Alcotest.check_raises "delta>=1" (Invalid_argument "Mechanism: delta must be in (0,1)")
    (fun () ->
      ignore (Mechanism.gaussian_sigma Mechanism.{ epsilon = 1.0; delta = 1.0 } ~sensitivity:1.0))

let test_binomial_n () =
  let params = Mechanism.paper_params in
  let n1 = Mechanism.binomial_n_for params ~sensitivity:1.0 in
  let n2 = Mechanism.binomial_n_for params ~sensitivity:2.0 in
  Alcotest.(check bool) "positive" true (n1 > 0);
  (* quadratic in sensitivity *)
  Alcotest.(check bool) "quadratic" true (abs (n2 - (4 * n1)) <= 4)

let test_laplace_scale () =
  Alcotest.(check (float 1e-9)) "b = delta/eps" 66.666666666666671
    (Mechanism.laplace_scale ~epsilon:0.3 ~sensitivity:20.0)

let test_laplace_distribution () =
  let rng = Prng.Rng.create 7 in
  let scale = 10.0 in
  let n = 100_000 in
  let sum = ref 0.0 and sum_abs = ref 0.0 in
  for _ = 1 to n do
    let x = Mechanism.laplace_noise rng ~scale in
    sum := !sum +. x;
    sum_abs := !sum_abs +. Float.abs x
  done;
  (* E[X] = 0, E[|X|] = b *)
  Alcotest.(check bool) "mean ~0" true (Float.abs (!sum /. float_of_int n) < 0.3);
  Alcotest.(check bool) "mean |X| ~b" true
    (Float.abs ((!sum_abs /. float_of_int n) -. scale) < 0.3)

(* --- composition --- *)

let test_composition_basic () =
  let p = Mechanism.{ epsilon = 0.1; delta = 1e-12 } in
  let total = Composition.basic p ~rounds:10 in
  Alcotest.(check (float 1e-9)) "eps" 1.0 total.Mechanism.epsilon

let test_composition_advanced_beats_basic_eventually () =
  let p = Mechanism.{ epsilon = 0.05; delta = 1e-12 } in
  let basic = Composition.basic p ~rounds:400 in
  let advanced = Composition.advanced p ~rounds:400 ~delta_slack:1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "advanced %.2f < basic %.2f at 400 rounds" advanced.Mechanism.epsilon
       basic.Mechanism.epsilon)
    true
    (advanced.Mechanism.epsilon < basic.Mechanism.epsilon);
  (* and loses for very few rounds *)
  let b1 = Composition.basic p ~rounds:2 in
  let a1 = Composition.advanced p ~rounds:2 ~delta_slack:1e-9 in
  Alcotest.(check bool) "basic wins at 2 rounds" true
    (b1.Mechanism.epsilon < a1.Mechanism.epsilon)

let test_composition_best () =
  let p = Mechanism.{ epsilon = 0.05; delta = 1e-12 } in
  List.iter
    (fun rounds ->
      let b = Composition.best p ~rounds ~delta_slack:1e-9 in
      let basic = Composition.basic p ~rounds in
      let adv = Composition.advanced p ~rounds ~delta_slack:1e-9 in
      Alcotest.(check (float 1e-12)) "min of the two"
        (Float.min basic.Mechanism.epsilon adv.Mechanism.epsilon)
        b.Mechanism.epsilon)
    [ 1; 10; 100; 1_000 ]

let test_rounds_within_budget () =
  let per_round = Mechanism.{ epsilon = 0.3; delta = 1e-11 } in
  let budget = Mechanism.{ epsilon = 3.0; delta = 1e-6 } in
  let k = Composition.rounds_within_budget ~per_round ~budget ~delta_slack:1e-8 in
  Alcotest.(check bool) (Printf.sprintf "fits %d rounds" k) true (k >= 10);
  let total = Composition.best per_round ~rounds:k ~delta_slack:1e-8 in
  Alcotest.(check bool) "within budget" true (total.Mechanism.epsilon <= 3.0);
  let over = Composition.best per_round ~rounds:(k + 1) ~delta_slack:1e-8 in
  Alcotest.(check bool) "k+1 exceeds" true (over.Mechanism.epsilon > 3.0)

let test_rounds_zero_when_budget_too_small () =
  let per_round = Mechanism.{ epsilon = 0.3; delta = 1e-11 } in
  let budget = Mechanism.{ epsilon = 0.1; delta = 1e-6 } in
  Alcotest.(check int) "no rounds fit" 0
    (Composition.rounds_within_budget ~per_round ~budget ~delta_slack:1e-8)

(* --- budget --- *)

let test_budget_split () =
  let params = Mechanism.{ epsilon = 0.3; delta = 1e-11 } in
  let alloc = Budget.split params ~counters:3 in
  Alcotest.(check (float 1e-12)) "eps third" 0.1 alloc.Budget.per_counter.Mechanism.epsilon;
  Alcotest.(check bool) "delta third" true
    (Float.abs (alloc.Budget.per_counter.Mechanism.delta -. (1e-11 /. 3.0)) < 1e-20)

let test_budget_compose () =
  let p = Mechanism.{ epsilon = 0.1; delta = 1e-12 } in
  let total = Budget.compose [ p; p; p ] in
  Alcotest.(check (float 1e-12)) "eps adds" 0.3 total.Mechanism.epsilon

let test_budget_split_then_compose_identity () =
  let params = Mechanism.{ epsilon = 0.3; delta = 9e-12 } in
  let alloc = Budget.split params ~counters:9 in
  let recomposed = Budget.compose (List.init 9 (fun _ -> alloc.Budget.per_counter)) in
  Alcotest.(check (float 1e-9)) "eps identity" params.Mechanism.epsilon recomposed.Mechanism.epsilon

let test_budget_weighted () =
  let params = Mechanism.{ epsilon = 1.0; delta = 1e-10 } in
  match Budget.split_weighted params ~weights:[ 1.0; 3.0 ] with
  | [ a; b ] ->
    Alcotest.(check (float 1e-9)) "quarter" 0.25 a.Mechanism.epsilon;
    Alcotest.(check (float 1e-9)) "three quarters" 0.75 b.Mechanism.epsilon
  | _ -> Alcotest.fail "expected two allocations"

(* --- accountant --- *)

let test_accountant_rejects_overlap () =
  let acc = Accountant.create () in
  let params = Mechanism.paper_params in
  Accountant.register acc ~start_hour:0 ~duration_hours:24 ~system:Accountant.PrivCount
    ~statistic:"streams" ~params;
  Alcotest.(check bool) "overlap raises" true
    (try
       Accountant.register acc ~start_hour:12 ~duration_hours:24 ~system:Accountant.PSC
         ~statistic:"ips" ~params;
       false
     with Accountant.Schedule_violation _ -> true)

let test_accountant_enforces_gap () =
  let acc = Accountant.create () in
  let params = Mechanism.paper_params in
  Accountant.register acc ~start_hour:0 ~duration_hours:24 ~system:Accountant.PrivCount
    ~statistic:"streams" ~params;
  Alcotest.(check bool) "short gap raises" true
    (try
       Accountant.register acc ~start_hour:30 ~duration_hours:24 ~system:Accountant.PrivCount
         ~statistic:"domains" ~params;
       false
     with Accountant.Schedule_violation _ -> true);
  (* a 24h gap is allowed *)
  Accountant.register acc ~start_hour:48 ~duration_hours:24 ~system:Accountant.PrivCount
    ~statistic:"domains" ~params;
  Alcotest.(check int) "two registered" 2 (List.length (Accountant.records acc))

let test_accountant_repeat_same_statistic () =
  (* repeating the same statistic back-to-back is allowed (PrivCount's
     repeatable phases) as long as periods don't overlap *)
  let acc = Accountant.create () in
  let params = Mechanism.paper_params in
  Accountant.register acc ~start_hour:0 ~duration_hours:24 ~system:Accountant.PrivCount
    ~statistic:"streams" ~params;
  Accountant.register acc ~start_hour:24 ~duration_hours:24 ~system:Accountant.PrivCount
    ~statistic:"streams" ~params;
  Alcotest.(check int) "both registered" 2 (List.length (Accountant.records acc))

let test_accountant_total_spend () =
  let acc = Accountant.create () in
  let params = Mechanism.{ epsilon = 0.3; delta = 1e-11 } in
  Accountant.register acc ~start_hour:0 ~duration_hours:24 ~system:Accountant.PrivCount
    ~statistic:"a" ~params;
  Accountant.register acc ~start_hour:48 ~duration_hours:24 ~system:Accountant.PSC
    ~statistic:"b" ~params;
  let total = Accountant.total_spend acc in
  Alcotest.(check (float 1e-9)) "total eps" 0.6 total.Mechanism.epsilon

let test_accountant_window_spend () =
  let acc = Accountant.create () in
  let params = Mechanism.{ epsilon = 0.3; delta = 1e-11 } in
  Accountant.register acc ~start_hour:0 ~duration_hours:24 ~system:Accountant.PrivCount
    ~statistic:"a" ~params;
  Accountant.register acc ~start_hour:48 ~duration_hours:24 ~system:Accountant.PSC
    ~statistic:"b" ~params;
  let w = Accountant.window_spend acc ~window_start:0 in
  Alcotest.(check (float 1e-9)) "single window spend" 0.3 w.Mechanism.epsilon

(* --- sensitivity --- *)

let test_sensitivity_of_statistics () =
  let open Sensitivity in
  Alcotest.(check (float 0.0)) "count" 20.0
    (of_statistic (Count Action_bounds.Connect_to_domain));
  Alcotest.(check (float 0.0)) "histogram same as count" 20.0
    (of_statistic (Histogram (Action_bounds.Connect_to_domain, 10)));
  Alcotest.(check (float 0.0)) "unique ips" 4.0
    (of_statistic (Unique Action_bounds.New_ip_day1))

let prop_split_never_exceeds_budget =
  QCheck.Test.make ~name:"split then compose <= budget" ~count:200
    QCheck.(int_range 1 50)
    (fun counters ->
      let params = Mechanism.{ epsilon = 0.3; delta = 1e-11 } in
      let alloc = Budget.split params ~counters in
      let total = Budget.compose (List.init counters (fun _ -> alloc.Budget.per_counter)) in
      total.Mechanism.epsilon <= params.Mechanism.epsilon +. 1e-9
      && total.Mechanism.delta <= params.Mechanism.delta +. 1e-20)

let () =
  Alcotest.run "dp"
    [
      ( "action_bounds",
        [
          Alcotest.test_case "match paper table" `Quick test_bounds_match_paper;
          Alcotest.test_case "defining activities" `Quick test_defining_activities;
          Alcotest.test_case "all actions bounded" `Quick test_bounds_cover_all_actions;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "sigma formula" `Quick test_sigma_formula;
          Alcotest.test_case "sigma linear" `Quick test_sigma_scales_linearly;
          Alcotest.test_case "epsilon roundtrip" `Quick test_epsilon_roundtrip;
          Alcotest.test_case "noise distribution" `Quick test_mechanism_noise_distribution;
          Alcotest.test_case "invalid params" `Quick test_invalid_params_rejected;
          Alcotest.test_case "binomial n" `Quick test_binomial_n;
          Alcotest.test_case "laplace scale" `Quick test_laplace_scale;
          Alcotest.test_case "laplace distribution" `Quick test_laplace_distribution;
        ] );
      ( "composition",
        [
          Alcotest.test_case "basic" `Quick test_composition_basic;
          Alcotest.test_case "advanced vs basic" `Quick test_composition_advanced_beats_basic_eventually;
          Alcotest.test_case "best" `Quick test_composition_best;
          Alcotest.test_case "rounds within budget" `Quick test_rounds_within_budget;
          Alcotest.test_case "tiny budget" `Quick test_rounds_zero_when_budget_too_small;
        ] );
      ( "budget",
        [
          Alcotest.test_case "split" `Quick test_budget_split;
          Alcotest.test_case "compose" `Quick test_budget_compose;
          Alcotest.test_case "split/compose identity" `Quick test_budget_split_then_compose_identity;
          Alcotest.test_case "weighted" `Quick test_budget_weighted;
        ] );
      ( "accountant",
        [
          Alcotest.test_case "rejects overlap" `Quick test_accountant_rejects_overlap;
          Alcotest.test_case "enforces 24h gap" `Quick test_accountant_enforces_gap;
          Alcotest.test_case "repeat same statistic" `Quick test_accountant_repeat_same_statistic;
          Alcotest.test_case "total spend" `Quick test_accountant_total_spend;
          Alcotest.test_case "window spend" `Quick test_accountant_window_spend;
        ] );
      ("sensitivity", [ Alcotest.test_case "statistics" `Quick test_sensitivity_of_statistics ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_split_never_exceeds_budget ]);
    ]
