test/test_psc.ml: Alcotest Array Cp Crypto Dp Float Item List Printf Protocol Psc QCheck QCheck_alcotest Stats Table
