test/test_torsim.mli:
