test/test_privcount.ml: Alcotest Array Counter Crypto Deployment Dp Float List Printf Privcount QCheck QCheck_alcotest Stats Ts
