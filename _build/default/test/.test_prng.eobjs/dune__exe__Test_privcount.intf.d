test/test_privcount.mli:
