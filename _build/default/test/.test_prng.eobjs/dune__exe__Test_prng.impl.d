test/test_prng.ml: Alcotest Array Fun List Printf Prng QCheck QCheck_alcotest
