test/test_crypto.ml: Alcotest Array Bit_proof Char Crypto Drbg Elgamal Group Hmac List Pedersen Printf QCheck QCheck_alcotest Schnorr_sig Secret_sharing Sha256 Shuffle Sigma String
