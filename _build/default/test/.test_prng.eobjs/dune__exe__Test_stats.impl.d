test/test_stats.ml: Alcotest Array Ci Descriptive Extrapolate Float Format Guard_model Hashtbl List Powerlaw Printf Prng QCheck QCheck_alcotest Special Stats
