test/test_psc.mli:
