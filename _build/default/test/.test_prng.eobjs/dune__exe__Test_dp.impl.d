test/test_dp.ml: Accountant Action_bounds Alcotest Budget Composition Dp Float List Mechanism Printf Prng QCheck QCheck_alcotest Sensitivity
