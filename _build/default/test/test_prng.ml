let check_float = Alcotest.(check (float 1e-9))

(* --- determinism and stream independence --- *)

let test_determinism () =
  let a = Prng.Rng.create 42 and b = Prng.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Rng.int64 a) (Prng.Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.Rng.create 1 and b = Prng.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Rng.int64 a = Prng.Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_split_independent () =
  let a = Prng.Rng.create 7 in
  let child = Prng.Rng.split a in
  let xs = Array.init 32 (fun _ -> Prng.Rng.int64 a) in
  let ys = Array.init 32 (fun _ -> Prng.Rng.int64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_copy () =
  let a = Prng.Rng.create 7 in
  ignore (Prng.Rng.int64 a);
  let b = Prng.Rng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Prng.Rng.int64 a) (Prng.Rng.int64 b)

(* --- uniformity --- *)

let test_below_range () =
  let rng = Prng.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.Rng.below rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "below out of range"
  done

let test_below_uniform () =
  let rng = Prng.Rng.create 13 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.Rng.below rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = float_of_int n /. 10.0 in
      if abs_float (float_of_int c -. expected) > 5.0 *. sqrt expected then
        Alcotest.fail "bucket count outside 5 sigma")
    counts

let test_float_bounds () =
  let rng = Prng.Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Prng.Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float outside [0,1)"
  done

let test_int_in () =
  let rng = Prng.Rng.create 5 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 10_000 do
    let v = Prng.Rng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.fail "int_in out of range";
    if v = -3 then seen_lo := true;
    if v = 3 then seen_hi := true
  done;
  Alcotest.(check bool) "endpoints reachable" true (!seen_lo && !seen_hi)

let test_permutation () =
  let rng = Prng.Rng.create 21 in
  let p = Prng.Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- distribution moments --- *)

let mean_of f n rng =
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. f rng
  done;
  !sum /. float_of_int n

let test_normal_moments () =
  let rng = Prng.Rng.create 31 in
  let n = 200_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.Dist.normal rng ~mu:5.0 ~sigma:2.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 5" true (abs_float (mean -. 5.0) < 0.05);
  Alcotest.(check bool) "var near 4" true (abs_float (var -. 4.0) < 0.15)

let test_exponential_mean () =
  let rng = Prng.Rng.create 37 in
  let mean = mean_of (fun r -> Prng.Dist.exponential r ~rate:0.5) 100_000 rng in
  Alcotest.(check bool) "mean near 2" true (abs_float (mean -. 2.0) < 0.05)

let test_poisson_mean_small () =
  let rng = Prng.Rng.create 41 in
  let mean = mean_of (fun r -> float_of_int (Prng.Dist.poisson r ~lambda:3.5)) 100_000 rng in
  Alcotest.(check bool) "mean near 3.5" true (abs_float (mean -. 3.5) < 0.05)

let test_poisson_mean_large () =
  let rng = Prng.Rng.create 43 in
  let mean = mean_of (fun r -> float_of_int (Prng.Dist.poisson r ~lambda:500.0)) 20_000 rng in
  Alcotest.(check bool) "mean near 500" true (abs_float (mean -. 500.0) < 2.0)

let test_binomial_exact_small () =
  let rng = Prng.Rng.create 47 in
  let mean = mean_of (fun r -> float_of_int (Prng.Dist.binomial r ~n:20 ~p:0.3)) 100_000 rng in
  Alcotest.(check bool) "mean near 6" true (abs_float (mean -. 6.0) < 0.05)

let test_binomial_large () =
  let rng = Prng.Rng.create 53 in
  let mean = mean_of (fun r -> float_of_int (Prng.Dist.binomial r ~n:10_000 ~p:0.5)) 5_000 rng in
  Alcotest.(check bool) "mean near 5000" true (abs_float (mean -. 5000.0) < 10.0)

let test_binomial_extreme_p () =
  let rng = Prng.Rng.create 59 in
  let mean = mean_of (fun r -> float_of_int (Prng.Dist.binomial r ~n:1_000 ~p:0.001)) 50_000 rng in
  Alcotest.(check bool) "mean near 1" true (abs_float (mean -. 1.0) < 0.05)

let test_binomial_edges () =
  let rng = Prng.Rng.create 61 in
  Alcotest.(check int) "n=0" 0 (Prng.Dist.binomial rng ~n:0 ~p:0.5);
  Alcotest.(check int) "p=0" 0 (Prng.Dist.binomial rng ~n:100 ~p:0.0);
  Alcotest.(check int) "p=1" 100 (Prng.Dist.binomial rng ~n:100 ~p:1.0)

let test_geometric_mean () =
  let rng = Prng.Rng.create 67 in
  (* mean failures before success = (1-p)/p = 3 for p = 0.25 *)
  let mean = mean_of (fun r -> float_of_int (Prng.Dist.geometric r ~p:0.25)) 100_000 rng in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.1)

let test_zipf_support () =
  let rng = Prng.Rng.create 71 in
  for _ = 1 to 10_000 do
    let v = Prng.Dist.zipf rng ~n:1000 ~s:1.1 in
    if v < 1 || v > 1000 then Alcotest.fail "zipf out of support"
  done

let test_zipf_rank1_frequency () =
  (* P(1) = 1 / (1^s * H_{n,s}); for n=100, s=1, H = 5.187..., so ~0.1928 *)
  let rng = Prng.Rng.create 73 in
  let n = 200_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Prng.Dist.zipf rng ~n:100 ~s:1.0 = 1 then incr ones
  done;
  let freq = float_of_int !ones /. float_of_int n in
  let h = Array.fold_left ( +. ) 0.0 (Array.init 100 (fun i -> 1.0 /. float_of_int (i + 1))) in
  Alcotest.(check bool) "rank-1 frequency" true (abs_float (freq -. (1.0 /. h)) < 0.01)

let test_zipf_n1 () =
  let rng = Prng.Rng.create 79 in
  Alcotest.(check int) "n=1 always 1" 1 (Prng.Dist.zipf rng ~n:1 ~s:2.0)

let test_log_factorial () =
  check_float "0!" 0.0 (Prng.Dist.log_factorial 0);
  check_float "5!" (log 120.0) (Prng.Dist.log_factorial 5);
  (* Stirling branch vs exact sum at n=300 *)
  let exact = ref 0.0 in
  for i = 2 to 300 do
    exact := !exact +. log (float_of_int i)
  done;
  Alcotest.(check bool) "stirling accurate" true
    (abs_float (Prng.Dist.log_factorial 300 -. !exact) < 1e-8)

let test_log_choose () =
  check_float "C(5,2)" (log 10.0) (Prng.Dist.log_choose 5 2);
  Alcotest.(check bool) "k>n" true (Prng.Dist.log_choose 3 5 = neg_infinity);
  Alcotest.(check bool) "k<0" true (Prng.Dist.log_choose 3 (-1) = neg_infinity)

(* --- invalid arguments --- *)

let test_invalid_arguments () =
  let rng = Prng.Rng.create 1 in
  Alcotest.check_raises "below 0" (Invalid_argument "Rng.below: n must be positive") (fun () ->
      ignore (Prng.Rng.below rng 0));
  Alcotest.check_raises "below negative" (Invalid_argument "Rng.below: n must be positive")
    (fun () -> ignore (Prng.Rng.below rng (-3)));
  Alcotest.check_raises "int_in inverted" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Prng.Rng.int_in rng 5 4));
  Alcotest.check_raises "choose empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Prng.Rng.choose rng [||]));
  Alcotest.check_raises "exponential rate" (Invalid_argument "Dist.exponential: rate must be positive")
    (fun () -> ignore (Prng.Dist.exponential rng ~rate:0.0));
  Alcotest.check_raises "poisson negative" (Invalid_argument "Dist.poisson: negative lambda")
    (fun () -> ignore (Prng.Dist.poisson rng ~lambda:(-1.0)));
  Alcotest.check_raises "binomial negative n" (Invalid_argument "Dist.binomial: negative n")
    (fun () -> ignore (Prng.Dist.binomial rng ~n:(-1) ~p:0.5));
  Alcotest.check_raises "binomial bad p" (Invalid_argument "Dist.binomial: p outside [0,1]")
    (fun () -> ignore (Prng.Dist.binomial rng ~n:10 ~p:1.5));
  Alcotest.check_raises "geometric bad p" (Invalid_argument "Dist.geometric: p outside (0,1]")
    (fun () -> ignore (Prng.Dist.geometric rng ~p:0.0));
  Alcotest.check_raises "zipf bad n" (Invalid_argument "Dist.zipf: n must be >= 1") (fun () ->
      ignore (Prng.Dist.zipf rng ~n:0 ~s:1.0));
  Alcotest.check_raises "zipf bad s" (Invalid_argument "Dist.zipf: s must be positive")
    (fun () -> ignore (Prng.Dist.zipf rng ~n:10 ~s:0.0));
  Alcotest.check_raises "log_factorial negative"
    (Invalid_argument "Dist.log_factorial: negative argument") (fun () ->
      ignore (Prng.Dist.log_factorial (-1)))

let test_below_one_always_zero () =
  let rng = Prng.Rng.create 2 in
  for _ = 1 to 100 do
    Alcotest.(check int) "n=1" 0 (Prng.Rng.below rng 1)
  done

let test_below_large_n () =
  (* n close to the 62-bit sample-space size must not loop or bias *)
  let rng = Prng.Rng.create 3 in
  let n = max_int / 2 in
  for _ = 1 to 50 do
    let v = Prng.Rng.below rng n in
    if v < 0 || v >= n then Alcotest.fail "out of range"
  done

(* --- alias sampler --- *)

let test_alias_matches_weights () =
  let rng = Prng.Rng.create 83 in
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let a = Prng.Alias.create weights in
  let counts = Array.make 4 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Prng.Alias.sample a rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. 10.0 *. float_of_int n in
      if abs_float (float_of_int c -. expected) > 6.0 *. sqrt expected then
        Alcotest.fail (Printf.sprintf "alias bucket %d off: %d vs %f" i c expected))
    counts

let test_alias_single () =
  let rng = Prng.Rng.create 89 in
  let a = Prng.Alias.create [| 42.0 |] in
  Alcotest.(check int) "single bucket" 0 (Prng.Alias.sample a rng);
  Alcotest.(check int) "length" 1 (Prng.Alias.length a)

let test_alias_zero_weight () =
  let rng = Prng.Rng.create 97 in
  let a = Prng.Alias.create [| 0.0; 1.0; 0.0 |] in
  for _ = 1 to 1000 do
    Alcotest.(check int) "only positive bucket" 1 (Prng.Alias.sample a rng)
  done

let test_alias_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.create: empty distribution")
    (fun () -> ignore (Prng.Alias.create [||]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Alias.create: weights must sum to a positive value") (fun () ->
      ignore (Prng.Alias.create [| 0.0; 0.0 |]))

(* --- qcheck properties --- *)

let prop_below_in_range =
  QCheck.Test.make ~name:"below always in range" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, n) ->
      let rng = Prng.Rng.create seed in
      let v = Prng.Rng.below rng n in
      v >= 0 && v < n)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Prng.Rng.create seed in
      let a = Array.of_list l in
      Prng.Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_binomial_in_range =
  QCheck.Test.make ~name:"binomial in [0,n]" ~count:300
    QCheck.(triple small_int (int_range 0 5000) (float_range 0.0 1.0))
    (fun (seed, n, p) ->
      let rng = Prng.Rng.create seed in
      let v = Prng.Dist.binomial rng ~n ~p in
      v >= 0 && v <= n)

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "below range" `Quick test_below_range;
          Alcotest.test_case "below uniform" `Quick test_below_uniform;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "permutation" `Quick test_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "poisson small" `Quick test_poisson_mean_small;
          Alcotest.test_case "poisson large" `Quick test_poisson_mean_large;
          Alcotest.test_case "binomial small" `Quick test_binomial_exact_small;
          Alcotest.test_case "binomial large" `Quick test_binomial_large;
          Alcotest.test_case "binomial extreme p" `Quick test_binomial_extreme_p;
          Alcotest.test_case "binomial edges" `Quick test_binomial_edges;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "zipf support" `Quick test_zipf_support;
          Alcotest.test_case "zipf rank-1 frequency" `Quick test_zipf_rank1_frequency;
          Alcotest.test_case "zipf n=1" `Quick test_zipf_n1;
          Alcotest.test_case "log_factorial" `Quick test_log_factorial;
          Alcotest.test_case "log_choose" `Quick test_log_choose;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
          Alcotest.test_case "below 1" `Quick test_below_one_always_zero;
          Alcotest.test_case "below large n" `Quick test_below_large_n;
        ] );
      ( "alias",
        [
          Alcotest.test_case "matches weights" `Quick test_alias_matches_weights;
          Alcotest.test_case "single bucket" `Quick test_alias_single;
          Alcotest.test_case "zero weight bucket" `Quick test_alias_zero_weight;
          Alcotest.test_case "invalid input" `Quick test_alias_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_below_in_range; prop_shuffle_preserves_multiset; prop_binomial_in_range ] );
    ]
