open Stats

let checkf = Alcotest.(check (float 1e-6))

(* --- special functions --- *)

let test_erf_values () =
  checkf "erf(0)" 0.0 (Special.erf 0.0);
  checkf "erf(1)" 0.8427007929497149 (Special.erf 1.0);
  checkf "erf(-1)" (-0.8427007929497149) (Special.erf (-1.0));
  checkf "erf(2)" 0.9953222650189527 (Special.erf 2.0);
  Alcotest.(check bool) "erf(6) ~ 1" true (Float.abs (Special.erf 6.0 -. 1.0) < 1e-12)

let test_erfc_symmetry () =
  List.iter
    (fun x -> checkf (Printf.sprintf "erfc(%f)" x) 2.0 (Special.erfc x +. Special.erfc (-.x)))
    [ 0.1; 0.5; 1.0; 2.5 ]

let test_normal_cdf () =
  checkf "phi(0)" 0.5 (Special.normal_cdf 0.0);
  Alcotest.(check (float 1e-5)) "phi(1.96)" 0.9750021048517795
    (Special.normal_cdf 1.959963984540054);
  checkf "scaled" 0.5 (Special.normal_cdf ~mu:10.0 ~sigma:3.0 10.0)

let test_ppf_roundtrip () =
  List.iter
    (fun p -> Alcotest.(check (float 1e-8)) (string_of_float p) p (Special.normal_cdf (Special.normal_ppf p)))
    [ 0.001; 0.025; 0.2; 0.5; 0.8; 0.975; 0.999 ]

let test_z_95 () =
  Alcotest.(check (float 1e-6)) "z(0.95)" 1.959963984540054 (Special.z_for_confidence 0.95)

let test_log_gamma () =
  checkf "gamma(1)" 0.0 (Special.log_gamma 1.0);
  checkf "gamma(5) = ln 24" (log 24.0) (Special.log_gamma 5.0);
  checkf "gamma(0.5) = ln sqrt pi" (0.5 *. log Float.pi) (Special.log_gamma 0.5)

(* --- CIs --- *)

let test_ci_basics () =
  let ci = Ci.make 1.0 3.0 in
  checkf "width" 2.0 (Ci.width ci);
  checkf "midpoint" 2.0 (Ci.midpoint ci);
  Alcotest.(check bool) "contains" true (Ci.contains ci 2.5);
  Alcotest.(check bool) "not contains" false (Ci.contains ci 3.5);
  Alcotest.check_raises "inverted rejected" (Invalid_argument "Ci.make: lo > hi") (fun () ->
      ignore (Ci.make 3.0 1.0))

let test_ci_intersect_union () =
  let a = Ci.make 0.0 2.0 and b = Ci.make 1.0 3.0 and c = Ci.make 5.0 6.0 in
  (match Ci.intersect a b with
  | Some i ->
    checkf "inter lo" 1.0 i.Ci.lo;
    checkf "inter hi" 2.0 i.Ci.hi
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "disjoint" true (Ci.intersect a c = None);
  let u = Ci.union a c in
  checkf "union lo" 0.0 u.Ci.lo;
  checkf "union hi" 6.0 u.Ci.hi

let test_normal_ci_coverage () =
  (* empirical coverage of the 95% CI under the declared noise model *)
  let rng = Prng.Rng.create 77 in
  let truth = 1_000.0 and sigma = 50.0 in
  let n = 5_000 in
  let covered = ref 0 in
  for _ = 1 to n do
    let observed = truth +. Prng.Dist.normal rng ~mu:0.0 ~sigma in
    if Ci.contains (Ci.normal ~value:observed ~sigma ()) truth then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int n in
  Alcotest.(check bool) "coverage ~95%" true (coverage > 0.93 && coverage < 0.97)

let test_normal_ci_can_be_negative () =
  let ci = Ci.normal ~value:(-5.0) ~sigma:10.0 () in
  Alcotest.(check bool) "lower negative" true (ci.Ci.lo < 0.0);
  let nn = Ci.normal_nonneg ~value:(-5.0) ~sigma:10.0 () in
  checkf "clamped" 0.0 nn.Ci.lo

(* --- occupancy model --- *)

let test_occupancy_small_k () =
  (* for k << m, occupancy ~ k *)
  let occ = Ci.expected_occupied ~table_size:1_000_000 100 in
  Alcotest.(check bool) "nearly k" true (Float.abs (occ -. 100.0) < 0.1)

let test_occupancy_monotone () =
  let prev = ref (-1.0) in
  for k = 0 to 50 do
    let occ = Ci.expected_occupied ~table_size:64 (k * 10) in
    Alcotest.(check bool) "monotone" true (occ > !prev);
    prev := occ
  done

let test_occupancy_inverse () =
  List.iter
    (fun k ->
      let occ = Ci.expected_occupied ~table_size:4_096 k in
      let k' = Ci.invert_occupancy ~table_size:4_096 occ in
      Alcotest.(check bool) (string_of_int k) true (Float.abs (k' -. float_of_int k) < 0.001))
    [ 0; 1; 10; 100; 1_000; 3_000 ]

let test_occupancy_saturation () =
  Alcotest.(check bool) "full table diverges" true
    (Ci.invert_occupancy ~table_size:100 100.0 = infinity)

(* --- PSC exact CI --- *)

let test_binomial_exact_ci_covers_truth () =
  (* simulate the PSC observation model end-to-end and check coverage *)
  let rng = Prng.Rng.create 99 in
  let table_size = 8_192 and flips = 2_000 and k_true = 1_500 in
  let n = 300 in
  let covered = ref 0 in
  for _ = 1 to n do
    (* occupancy of k_true distinct balls *)
    let slots = Hashtbl.create k_true in
    for _ = 1 to k_true do
      Hashtbl.replace slots (Prng.Rng.below rng table_size) ()
    done;
    let occupied = Hashtbl.length slots in
    let noise = Prng.Dist.binomial rng ~n:flips ~p:0.5 in
    (* the protocol reports the raw nonzero count: occupied + heads *)
    let observed = occupied + noise in
    let ci = Ci.binomial_exact ~observed ~flips ~table_size () in
    if Ci.contains ci (float_of_int k_true) then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f >= 0.90" coverage)
    true (coverage >= 0.90)

let test_binomial_exact_ci_centered () =
  (* regression: the noise mean must be subtracted and the upper
     quantile search must not terminate at n — both bugs once produced
     CIs like [0; huge] around a mid-range estimate *)
  let observed = 100 + 500 and flips = 1_000 and table_size = 4_096 in
  (* occ ~ 100 after removing the mean 500 heads *)
  let ci = Ci.binomial_exact ~observed ~flips ~table_size () in
  Alcotest.(check bool)
    (Format.asprintf "lower bound sensible: %a" Ci.pp ci)
    true
    (ci.Ci.lo > 40.0 && ci.Ci.lo < 101.0);
  Alcotest.(check bool)
    (Format.asprintf "upper bound sensible: %a" Ci.pp ci)
    true
    (ci.Ci.hi > 101.0 && ci.Ci.hi < 180.0)

let test_binomial_quantiles_symmetric () =
  (* raw observed equal to the noise mean => true cardinality ~ 0; the
     CI must start at 0 and stay modest *)
  let ci = Ci.binomial_exact ~observed:5_000 ~flips:10_000 ~table_size:65_536 () in
  Alcotest.(check bool)
    (Format.asprintf "covers zero and stays tight: %a" Ci.pp ci)
    true
    (ci.Ci.lo = 0.0 && ci.Ci.hi < 250.0)

let test_binomial_exact_ci_tightens_with_fewer_flips () =
  (* same true cardinality (~1000), different noise levels *)
  let wide = Ci.binomial_exact ~observed:(1_000 + 5_000) ~flips:10_000 ~table_size:16_384 () in
  let tight = Ci.binomial_exact ~observed:(1_000 + 50) ~flips:100 ~table_size:16_384 () in
  Alcotest.(check bool) "fewer flips tighter" true (Ci.width tight < Ci.width wide)

(* --- extrapolation --- *)

let test_extrapolate_count () =
  checkf "divide" 1_000.0 (Extrapolate.count ~fraction:0.01 10.0);
  let ci = Extrapolate.count_ci ~fraction:0.5 (Ci.make 1.0 2.0) in
  checkf "ci lo" 2.0 ci.Ci.lo;
  checkf "ci hi" 4.0 ci.Ci.hi

let test_extrapolate_unique_range () =
  let r = Extrapolate.unique_range ~fraction:0.1 50.0 in
  checkf "lower is x" 50.0 r.Ci.lo;
  checkf "upper is x/p" 500.0 r.Ci.hi

let test_hsdir_visibility () =
  (* one slot: visibility = fraction; many slots: approaches 1 *)
  checkf "one replica" 0.1 (Extrapolate.hsdir_visibility ~observed_slots:10 ~total_slots:100 ~replicas:1);
  let v6 = Extrapolate.hsdir_visibility ~observed_slots:10 ~total_slots:100 ~replicas:6 in
  Alcotest.(check bool) "six replicas larger" true (v6 > 0.4 && v6 < 0.5)

let test_extrapolate_invalid () =
  Alcotest.check_raises "zero fraction" (Invalid_argument "Extrapolate.count: bad fraction")
    (fun () -> ignore (Extrapolate.count ~fraction:0.0 1.0))

(* --- power law --- *)

let test_expected_distinct_bounds () =
  let d = Powerlaw.expected_distinct ~n:1_000 ~s:1.0 ~draws:10_000 in
  Alcotest.(check bool) "at most n" true (d <= 1_000.0);
  Alcotest.(check bool) "at least something" true (d > 100.0);
  let d0 = Powerlaw.expected_distinct ~n:1_000 ~s:1.0 ~draws:0 in
  checkf "zero draws" 0.0 d0

let test_expected_distinct_matches_simulation () =
  let rng = Prng.Rng.create 123 in
  let n = 500 and s = 1.1 and draws = 2_000 in
  let expected = Powerlaw.expected_distinct ~n ~s ~draws in
  let trials = 50 in
  let total = ref 0 in
  for _ = 1 to trials do
    total := !total + Powerlaw.simulate_distinct rng ~n ~s ~draws
  done;
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.1f vs simulated %.1f" expected mean)
    true
    (Float.abs (expected -. mean) /. expected < 0.05)

let test_fit_exponent () =
  let s_true = 1.3 in
  let counts = Array.init 200 (fun i -> 1_000_000.0 *. (float_of_int (i + 1) ** -.s_true)) in
  let s_fit = Powerlaw.fit_exponent counts in
  Alcotest.(check bool) "recovers exponent" true (Float.abs (s_fit -. s_true) < 0.01)

let test_extrapolate_unique_mc () =
  let rng = Prng.Rng.create 7 in
  (* ground truth: zipf(1.0) over 10k items; we observe 10% of draws *)
  let universe = 10_000 and s = 1.0 in
  let network_draws = 100_000 in
  let observed_draws = 10_000 in
  let observed_distinct =
    int_of_float (Powerlaw.expected_distinct ~n:universe ~s ~draws:observed_draws)
  in
  let result =
    Powerlaw.extrapolate_unique rng ~universe ~observed_distinct ~observed_draws ~fraction:0.1
      ~trials:200 ()
  in
  let true_network = Powerlaw.expected_distinct ~n:universe ~s ~draws:network_draws in
  Alcotest.(check bool) "accepted some exponents" true (result.Powerlaw.accepted_exponents <> []);
  Alcotest.(check bool)
    (Printf.sprintf "network CI %s contains %.0f"
       (Format.asprintf "%a" Ci.pp result.Powerlaw.network_distinct)
       true_network)
    true
    (Ci.contains result.Powerlaw.network_distinct true_network
    || Float.abs (Ci.midpoint result.Powerlaw.network_distinct -. true_network) /. true_network
       < 0.1)

(* --- guard model --- *)

let test_guard_model_forward () =
  let e = Guard_model.expected_unique ~n_selective:1_000.0 ~n_promiscuous:10.0 ~g:3 ~f:0.01 in
  (* 1000 * (1 - 0.99^3) + 10 ~ 39.7 *)
  Alcotest.(check bool) "forward model" true (Float.abs (e -. 39.7) < 0.2)

let test_guard_model_recovers_truth () =
  (* generate two synthetic measurements from the true model and invert *)
  let n_sel = 100_000.0 and n_pro = 200.0 and g = 3 in
  let f1 = 0.0042 and f2 = 0.0088 in
  let e1 = Guard_model.expected_unique ~n_selective:n_sel ~n_promiscuous:n_pro ~g ~f:f1 in
  let e2 = Guard_model.expected_unique ~n_selective:n_sel ~n_promiscuous:n_pro ~g ~f:f2 in
  let m1 = { Guard_model.fraction = f1; count_ci = Ci.make (e1 -. 20.0) (e1 +. 20.0) } in
  let m2 = { Guard_model.fraction = f2; count_ci = Ci.make (e2 -. 20.0) (e2 +. 20.0) } in
  match Guard_model.fit_promiscuous m1 m2 ~g () with
  | None -> Alcotest.fail "no fit found"
  | Some fit ->
    Alcotest.(check bool) "promiscuous covered" true
      (Ci.contains fit.Guard_model.promiscuous n_pro);
    Alcotest.(check bool) "network total covered" true
      (Ci.contains fit.Guard_model.network_ips (n_sel +. n_pro))

let test_guard_model_pure_rejected () =
  (* data generated WITH promiscuous clients is inconsistent with small
     g under the pure model — the paper's [27;34] observation *)
  let n_sel = 100_000.0 and n_pro = 400.0 in
  let f1 = 0.0042 and f2 = 0.0088 in
  let e1 = Guard_model.expected_unique ~n_selective:n_sel ~n_promiscuous:n_pro ~g:3 ~f:f1 in
  let e2 = Guard_model.expected_unique ~n_selective:n_sel ~n_promiscuous:n_pro ~g:3 ~f:f2 in
  let m1 = { Guard_model.fraction = f1; count_ci = Ci.make (e1 -. 5.0) (e1 +. 5.0) } in
  let m2 = { Guard_model.fraction = f2; count_ci = Ci.make (e2 -. 5.0) (e2 +. 5.0) } in
  match Guard_model.consistent_g_range m1 m2 () with
  | None -> () (* fully rejected is also fine *)
  | Some (lo, _) -> Alcotest.(check bool) "pure model needs implausible g" true (lo > 5)

(* --- descriptive --- *)

let test_descriptive () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checkf "mean" 3.0 (Descriptive.mean xs);
  checkf "median" 3.0 (Descriptive.median xs);
  checkf "variance" 2.5 (Descriptive.variance xs);
  checkf "q0" 1.0 (Descriptive.quantile xs 0.0);
  checkf "q1" 5.0 (Descriptive.quantile xs 1.0)

let test_empirical_ci () =
  let xs = Array.init 1_001 (fun i -> float_of_int i) in
  let ci = Descriptive.empirical_ci xs in
  Alcotest.(check bool) "lo near 25" true (Float.abs (ci.Ci.lo -. 25.0) < 1.0);
  Alcotest.(check bool) "hi near 975" true (Float.abs (ci.Ci.hi -. 975.0) < 1.0)

let prop_ppf_monotone =
  QCheck.Test.make ~name:"normal_ppf monotone" ~count:200
    QCheck.(pair (float_range 0.01 0.98) (float_range 0.001 0.01))
    (fun (p, dp) -> Special.normal_ppf (p +. dp) > Special.normal_ppf p)

let prop_occupancy_inverse =
  QCheck.Test.make ~name:"occupancy inverse roundtrip" ~count:200
    QCheck.(pair (int_range 64 65536) (int_range 0 5000))
    (fun (m, k) ->
      let occ = Ci.expected_occupied ~table_size:m k in
      Float.abs (Ci.invert_occupancy ~table_size:m occ -. float_of_int k) < 0.01 *. float_of_int (max 1 k) +. 0.5)

let () =
  Alcotest.run "stats"
    [
      ( "special",
        [
          Alcotest.test_case "erf values" `Quick test_erf_values;
          Alcotest.test_case "erfc symmetry" `Quick test_erfc_symmetry;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "ppf roundtrip" `Quick test_ppf_roundtrip;
          Alcotest.test_case "z for 95%" `Quick test_z_95;
          Alcotest.test_case "log gamma" `Quick test_log_gamma;
        ] );
      ( "ci",
        [
          Alcotest.test_case "basics" `Quick test_ci_basics;
          Alcotest.test_case "intersect/union" `Quick test_ci_intersect_union;
          Alcotest.test_case "normal coverage" `Quick test_normal_ci_coverage;
          Alcotest.test_case "negative counts" `Quick test_normal_ci_can_be_negative;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "small k" `Quick test_occupancy_small_k;
          Alcotest.test_case "monotone" `Quick test_occupancy_monotone;
          Alcotest.test_case "inverse" `Quick test_occupancy_inverse;
          Alcotest.test_case "saturation" `Quick test_occupancy_saturation;
        ] );
      ( "psc_ci",
        [
          Alcotest.test_case "coverage" `Quick test_binomial_exact_ci_covers_truth;
          Alcotest.test_case "centered (regression)" `Quick test_binomial_exact_ci_centered;
          Alcotest.test_case "quantile symmetry" `Quick test_binomial_quantiles_symmetric;
          Alcotest.test_case "flips vs width" `Quick test_binomial_exact_ci_tightens_with_fewer_flips;
        ] );
      ( "extrapolate",
        [
          Alcotest.test_case "count" `Quick test_extrapolate_count;
          Alcotest.test_case "unique range" `Quick test_extrapolate_unique_range;
          Alcotest.test_case "hsdir visibility" `Quick test_hsdir_visibility;
          Alcotest.test_case "invalid input" `Quick test_extrapolate_invalid;
        ] );
      ( "powerlaw",
        [
          Alcotest.test_case "expected distinct bounds" `Quick test_expected_distinct_bounds;
          Alcotest.test_case "analytic vs simulation" `Quick test_expected_distinct_matches_simulation;
          Alcotest.test_case "fit exponent" `Quick test_fit_exponent;
          Alcotest.test_case "MC extrapolation" `Quick test_extrapolate_unique_mc;
        ] );
      ( "guard_model",
        [
          Alcotest.test_case "forward" `Quick test_guard_model_forward;
          Alcotest.test_case "recovers truth" `Quick test_guard_model_recovers_truth;
          Alcotest.test_case "pure model rejected" `Quick test_guard_model_pure_rejected;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "moments/quantiles" `Quick test_descriptive;
          Alcotest.test_case "empirical ci" `Quick test_empirical_ci;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_ppf_monotone; prop_occupancy_inverse ] );
    ]
