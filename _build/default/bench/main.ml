(* The benchmark harness.

   Part 1 — reproduction: runs every table and figure of the paper and
   prints paper-vs-measured rows (the same harness as
   `tormeasure run-all`).

   Part 2 — performance: one Bechamel micro-benchmark per table/figure,
   timing the computational kernel each experiment leans on, plus the
   cryptographic primitives. *)

open Bechamel
open Toolkit

(* --- shared fixtures for the kernels --- *)

let fixture_rng = Prng.Rng.create 99
let fixture_drbg = Crypto.Drbg.create "bench"

let small_consensus =
  lazy
    (Torsim.Netgen.generate
       ~config:{ Torsim.Netgen.default with Torsim.Netgen.relays = 120 }
       (Prng.Rng.create 5))

let small_engine = lazy (Torsim.Engine.create ~seed:5 (Lazy.force small_consensus))

let small_population =
  lazy
    (Workload.Population.build
       ~config:
         { Workload.Population.default with Workload.Population.selective = 200; promiscuous = 2 }
       (Lazy.force small_consensus) (Prng.Rng.create 6))

let sample_client () = (Workload.Population.clients (Lazy.force small_population)).(0)

let elgamal_key = lazy (Crypto.Elgamal.keygen fixture_drbg)

let psc_proto () =
  Psc.Protocol.create
    (Psc.Protocol.config ~table_size:1_024 ~num_cps:3 ~noise_flips_per_cp:32
       ~proof_rounds:None ~verify:false ())
    ~num_dcs:2 ~seed:9

(* --- one kernel per table/figure --- *)

let bench_table1 =
  Test.make ~name:"table1/action-bound-derivation"
    (Staged.stage (fun () ->
         List.iter
           (fun a -> ignore (Dp.Action_bounds.bound_value a))
           Dp.Action_bounds.all_actions))

let bench_fig1 =
  Test.make ~name:"fig1/exit-visit-simulation"
    (Staged.stage (fun () ->
         let engine = Lazy.force small_engine in
         Torsim.Engine.exit_visit engine (sample_client ())
           ~dest:(Torsim.Event.Hostname "example.com") ~port:443 ~subsequent_streams:19
           ~bytes:1_000_000.0 ()))

let bench_fig2 =
  Test.make ~name:"fig2/primary-domain-classification"
    (Staged.stage (fun () ->
         ignore (Tormeasure.Exp_alexa.classify_rank "www.amazon.com");
         ignore (Tormeasure.Exp_alexa.classify_rank "onionoo.torproject.org");
         ignore (Tormeasure.Exp_alexa.classify_rank "s123456.com");
         ignore (Tormeasure.Exp_alexa.classify_family "svc7.google.com")))

let bench_fig3 =
  Test.make ~name:"fig3/tld-classification"
    (Staged.stage (fun () ->
         ignore (Tormeasure.Exp_tld.classify_all "s99.co.uk");
         ignore (Tormeasure.Exp_tld.classify_alexa "www.s99.ru")))

let bench_table2 =
  Test.make ~name:"table2/psc-insert"
    (let proto = psc_proto () in
     let i = ref 0 in
     Staged.stage (fun () ->
         incr i;
         Psc.Protocol.insert proto ~dc:0 (Printf.sprintf "sld%d.com" (!i land 1023))))

let bench_table3 =
  Test.make ~name:"table3/guard-model-fit"
    (Staged.stage (fun () ->
         let m1 =
           { Stats.Guard_model.fraction = 0.0042; count_ci = Stats.Ci.make 1_400.0 1_600.0 }
         in
         let m2 =
           { Stats.Guard_model.fraction = 0.0088; count_ci = Stats.Ci.make 2_900.0 3_200.0 }
         in
         ignore (Stats.Guard_model.fit_promiscuous m1 m2 ~g:3 ~steps:100 ())))

let bench_table4 =
  Test.make ~name:"table4/client-day-simulation"
    (Staged.stage (fun () ->
         Workload.Behavior.run_client_day (Lazy.force small_engine) Workload.Behavior.default
           (sample_client ()) fixture_rng))

let bench_table5 =
  Test.make ~name:"table5/psc-pipeline-1k"
    (Staged.stage (fun () ->
         let proto = psc_proto () in
         for i = 0 to 99 do
           Psc.Protocol.insert proto ~dc:(i land 1) (Printf.sprintf "ip:%d" i)
         done;
         ignore (Psc.Protocol.run proto)))

let bench_fig4 =
  Test.make ~name:"fig4/geo-sampling"
    (Staged.stage (fun () -> ignore (Workload.Geo.sample fixture_rng)))

let bench_table6 =
  Test.make ~name:"table6/hsdir-ring-lookup"
    (let ring = Torsim.Engine.hsdir_ring (Lazy.force small_engine) in
     let i = ref 0 in
     Staged.stage (fun () ->
         incr i;
         ignore (Torsim.Hsdir_ring.responsible ring (Torsim.Onion.bogus_address !i))))

let bench_table7 =
  Test.make ~name:"table7/descriptor-fetch-simulation"
    (Staged.stage (fun () ->
         let engine = Lazy.force small_engine in
         Torsim.Engine.fetch_descriptor engine ~address:(Torsim.Onion.bogus_address 42)))

let bench_table8 =
  Test.make ~name:"table8/rendezvous-simulation"
    (Staged.stage (fun () ->
         Torsim.Engine.rendezvous (Lazy.force small_engine)
           ~outcome:(Torsim.Event.Rend_success { cells = 1_500 })))

let bench_users =
  Test.make ~name:"users/metrics-portal-estimate"
    (let baseline = Baseline.Metrics_portal.create () in
     Staged.stage (fun () ->
         ignore
           (Baseline.Metrics_portal.estimated_daily_users baseline (Lazy.force small_engine))))

(* --- cryptographic primitives --- *)

let bench_sha256 =
  Test.make ~name:"crypto/sha256-1KiB"
    (let block = String.make 1_024 'x' in
     Staged.stage (fun () -> ignore (Crypto.Sha256.digest block)))

let bench_elgamal =
  Test.make ~name:"crypto/elgamal-encrypt"
    (Staged.stage (fun () ->
         let _, pk = Lazy.force elgamal_key in
         ignore (Crypto.Elgamal.encrypt fixture_drbg pk Crypto.Elgamal.marker)))

let bench_shuffle =
  Test.make ~name:"crypto/shuffle-64-proven"
    (let _, pk = Lazy.force elgamal_key in
     let cts =
       Array.init 64 (fun _ -> Crypto.Elgamal.encrypt fixture_drbg pk Crypto.Elgamal.one)
     in
     Staged.stage (fun () -> ignore (Crypto.Shuffle.shuffle ~rounds:4 fixture_drbg pk cts)))

(* cost scaling in the number of computation parties: each CP adds a
   shuffle + rerandomize + decrypt pass over the vector *)
let psc_with_cps num_cps =
  let proto =
    Psc.Protocol.create
      (Psc.Protocol.config ~table_size:512 ~num_cps ~noise_flips_per_cp:16
         ~proof_rounds:None ~verify:false ())
      ~num_dcs:2 ~seed:9
  in
  for i = 0 to 63 do
    Psc.Protocol.insert proto ~dc:(i land 1) (Printf.sprintf "ip:%d" i)
  done;
  ignore (Psc.Protocol.run proto)

let bench_psc_2cps =
  Test.make ~name:"scaling/psc-512-slots-2cps" (Staged.stage (fun () -> psc_with_cps 2))

let bench_psc_5cps =
  Test.make ~name:"scaling/psc-512-slots-5cps" (Staged.stage (fun () -> psc_with_cps 5))

let bench_shuffle_proof_rounds =
  Test.make ~name:"scaling/shuffle-64-rounds16"
    (let _, pk = Lazy.force elgamal_key in
     let cts =
       Array.init 64 (fun _ -> Crypto.Elgamal.encrypt fixture_drbg pk Crypto.Elgamal.one)
     in
     Staged.stage (fun () -> ignore (Crypto.Shuffle.shuffle ~rounds:16 fixture_drbg pk cts)))

let bench_gaussian =
  Test.make ~name:"dp/gaussian-mechanism"
    (Staged.stage (fun () ->
         ignore
           (Dp.Mechanism.gaussian_mechanism fixture_rng Dp.Mechanism.paper_params
              ~sensitivity:20.0 1_000.0)))

let all_benches =
  [
    bench_table1; bench_fig1; bench_fig2; bench_fig3; bench_table2; bench_table3; bench_table4;
    bench_table5; bench_fig4; bench_table6; bench_table7; bench_table8; bench_users;
    bench_sha256; bench_elgamal; bench_shuffle; bench_gaussian; bench_psc_2cps; bench_psc_5cps;
    bench_shuffle_proof_rounds;
  ]

let run_perf () =
  Printf.printf "\n=== Part 2: Bechamel micro-benchmarks (one kernel per table/figure) ===\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1_000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols instance raw) with
          | Some [ ns ] -> Printf.printf "  %-40s %12.1f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
        results)
    all_benches

let run_reproduction seed =
  Printf.printf "=== Part 1: reproduction of every table and figure ===\n%!";
  let reports = Tormeasure.Registry.run_all ~seed () in
  let ok = List.filter Tormeasure.Report.all_ok reports in
  Printf.printf "\n%d/%d experiments fully within shape tolerances\n%!" (List.length ok)
    (List.length reports)

let run_ablations () =
  Printf.printf "\n=== Part 3: ablations of the methodology's design choices ===\n%!";
  List.iter Tormeasure.Report.print (Tormeasure.Ablations.all ())

let () =
  let args = Array.to_list Sys.argv in
  let perf_only = List.mem "--perf-only" args in
  let repro_only = List.mem "--repro-only" args in
  let seed = 1 in
  if not perf_only then run_reproduction seed;
  if not repro_only then run_perf ();
  if not (perf_only || repro_only) then run_ablations ()
